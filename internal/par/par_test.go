package par_test

import (
	"sync/atomic"
	"testing"

	"gomd/internal/obs"
	"gomd/internal/par"
)

// TestChunkPartition checks that Chunk tiles [0,n) exactly: contiguous,
// ascending, no gaps or overlap, for awkward n/W combinations.
func TestChunkPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 100, 1023} {
		for W := 1; W <= 9; W++ {
			next := 0
			for w := 0; w < W; w++ {
				lo, hi := par.Chunk(n, W, w)
				if lo != next {
					t.Fatalf("n=%d W=%d w=%d: lo=%d want %d", n, W, w, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d W=%d w=%d: hi=%d < lo=%d", n, W, w, hi, lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d W=%d: chunks end at %d", n, W, next)
			}
		}
	}
}

// TestRunCoversAllIndices verifies every index is visited exactly once
// for pools of several sizes, including W > n.
func TestRunCoversAllIndices(t *testing.T) {
	for _, W := range []int{1, 2, 4, 7} {
		p := par.NewPool(W)
		for _, n := range []int{0, 1, 3, 64, 1000} {
			visits := make([]int32, n)
			p.Run("cover", n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("W=%d n=%d: index %d visited %d times", W, n, i, v)
				}
			}
		}
		p.Close()
	}
}

// TestNilAndInlinePools checks the zero-goroutine paths run fn inline
// with the full range and a worker id of 0.
func TestNilAndInlinePools(t *testing.T) {
	for _, p := range []*par.Pool{nil, par.NewPool(0), par.NewPool(1)} {
		if got := p.Workers(); got != 1 {
			t.Fatalf("Workers() = %d, want 1", got)
		}
		called := 0
		p.Run("inline", 10, func(w, lo, hi int) {
			called++
			if w != 0 || lo != 0 || hi != 10 {
				t.Fatalf("inline run got (w=%d, lo=%d, hi=%d)", w, lo, hi)
			}
		})
		if called != 1 {
			t.Fatalf("inline run called fn %d times", called)
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestDisjointWritesRaceClean exercises the pool's intended access
// pattern — disjoint writes into a shared slice — under the race
// detector, across repeated barriers.
func TestDisjointWritesRaceClean(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	out := make([]float64, 10000)
	for iter := 0; iter < 50; iter++ {
		p.Run("disjoint", len(out), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += float64(w + 1)
			}
		})
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum == 0 {
		t.Fatal("no writes observed")
	}
}

// TestStatsAndPublish checks per-kernel accounting and the metrics
// export names.
func TestStatsAndPublish(t *testing.T) {
	p := par.NewPool(3)
	defer p.Close()
	for i := 0; i < 5; i++ {
		p.Run("k1", 300, func(w, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	}
	ks := p.Stats("k1")
	if ks.Runs != 5 {
		t.Fatalf("Runs = %d, want 5", ks.Runs)
	}
	if ks.WallNs <= 0 {
		t.Fatalf("WallNs = %d, want > 0", ks.WallNs)
	}
	if u := ks.Util(3); u < 0 || u > 1.000001 {
		t.Fatalf("Util = %v, want within [0,1]", u)
	}
	reg := obs.NewRegistry()
	p.Publish(reg, 2)
	if got := reg.Counter(obs.KernelMetric("par.runs", 2, "k1")).Value(); got != 5 {
		t.Fatalf("published runs = %d, want 5", got)
	}
	if reg.Gauge(obs.RankMetric("par.workers", 2)).Value() != 3 {
		t.Fatal("par.workers gauge not published")
	}
}

// TestSpanEmission checks one CatKernel span per barrier.
func TestSpanEmission(t *testing.T) {
	tr := obs.NewTracer(1)
	p := par.NewPool(2)
	defer p.Close()
	p.SetSpan(tr.Rank(0))
	p.Run("spread", 64, func(w, lo, hi int) {})
	p.Run("spread", 64, func(w, lo, hi int) {})
	n := 0
	for _, ev := range tr.Events() {
		if ev.Cat == obs.CatKernel && ev.Name == "par_spread" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("got %d par_spread spans, want 2", n)
	}
}

// TestEmptyRunSkipsDispatch ensures n=0 runs do nothing on a real pool.
func TestEmptyRunSkipsDispatch(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	p.Run("empty", 0, func(w, lo, hi int) {
		t.Error("fn called for n=0")
	})
	if ks := p.Stats("empty"); ks.Runs != 0 {
		t.Fatalf("empty run recorded %d barriers", ks.Runs)
	}
}
