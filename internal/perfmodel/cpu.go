package perfmodel

import (
	"math"

	"gomd/internal/core"
	"gomd/internal/mpi"
	"gomd/internal/pair"
)

// Costs are the per-operation time constants (seconds) of one CPU
// instance core at mixed precision. They are calibrated once against the
// paper's anchors (see EXPERIMENTS.md): the LJ/EAM/Rhodo absolute TS/s at
// 64 ranks and 2048k atoms of Figures 6/10/15, and the task shares of
// Figure 3.
type Costs struct {
	// Pair kernel cost per in-cutoff pair evaluation, by pair style.
	PairLJ     float64
	PairCharmm float64
	PairEAM    float64 // per pass-pair (the style meters both passes)
	PairGran   float64
	// PairReject prices traversing a stored neighbor that fails the
	// cutoff test (the skin's per-step overhead).
	PairReject float64

	// Precision multipliers applied to the pair cost (§8): LAMMPS INTEL
	// mixed is the baseline; double costs more (wider vectors), single
	// slightly less.
	DoubleFactor float64
	SingleFactor float64

	Bond float64 // per bond/angle term

	NeighCheck float64 // per candidate distance check during builds
	NeighStore float64 // per stored neighbor

	KspaceSpread float64 // per charge-assignment point (make_rho)
	KspaceInterp float64 // per interpolation point (interp)
	KspaceMap    float64 // per particle_map op
	KspaceFFT    float64 // per complex butterfly
	KspaceGrid   float64 // per Green's-function point

	Modify float64 // per per-atom fix operation
	Output float64 // per thermo evaluation per owned atom

	// Communication: intra-node MPI transport.
	MsgLatency   float64 // per point-to-point message
	ByteTime     float64 // per transferred byte
	ReduceLatSeq float64 // per Allreduce stage (x log2 P)

	// ThreadSync prices one intra-rank pool dispatch+join barrier per
	// extra worker: each threaded kernel stage pays
	// ThreadSync * (workers-1) on top of its divided compute time.
	ThreadSync float64

	// InitFrac models the paper's §5.1 observation that MPI_Init-related
	// overhead is proportional to run time and grows with the rank count:
	// per-rank Init time = InitFrac * P * wall time.
	InitFrac float64
}

// CPUCosts returns the calibrated CPU-instance constants.
func CPUCosts() Costs {
	return Costs{
		PairLJ:     5.9e-9,
		PairCharmm: 4.3e-9,
		PairEAM:    4.3e-9,
		PairGran:   17.0e-9,
		PairReject: 1.3e-9,

		DoubleFactor: 1.17,
		SingleFactor: 0.96,

		Bond: 18e-9,

		NeighCheck: 0.7e-9,
		NeighStore: 0.8e-9,

		KspaceSpread: 0.9e-9,
		KspaceInterp: 1.1e-9,
		KspaceMap:    2.0e-9,
		KspaceFFT:    0.35e-9, // MKL single-precision FFT (-DFFT_SINGLE)
		KspaceGrid:   0.6e-9,

		Modify: 7.0e-9,
		Output: 4.0e-9,

		MsgLatency:   1.8e-6,
		ByteTime:     1.0 / 6.0e9, // ~6 GB/s per rank pair, shared memory
		ReduceLatSeq: 2.2e-6,

		ThreadSync: 2.0e-6,

		InitFrac: 0.0042,
	}
}

// Input carries one measured run segment into the model.
type Input struct {
	Instance  Instance
	Costs     Costs
	Ranks     int
	Steps     int // timesteps covered by the counters
	PairStyle string
	Precision pair.Precision
	NGlobal   int

	// WorkersPerRank is the intra-rank worker-pool width (internal/par)
	// applied to the threadable kernels: pair forces, neighbor builds,
	// and the PPPM map/spread/interpolate/grid stages. 0/1 = serial. The
	// model caps the effective width at the instance's cores per rank —
	// oversubscribed workers add sync cost without adding speedup.
	WorkersPerRank int

	// PerRank holds each rank's engine counters accumulated over Steps.
	PerRank []core.Counters
	// MPI holds each rank's message-passing profile (counts and bytes;
	// wall times from the host machine are ignored by the model).
	MPI []mpi.Stats
}

// MPIFuncSeconds is the modeled per-step MPI profile of one rank,
// matching the paper's Figure 5 categories.
type MPIFuncSeconds struct {
	Init      float64
	Send      float64
	Sendrecv  float64
	Wait      float64
	Allreduce float64
	Others    float64
}

// Total sums the function times.
func (m MPIFuncSeconds) Total() float64 {
	return m.Init + m.Send + m.Sendrecv + m.Wait + m.Allreduce + m.Others
}

// Outcome is the modeled execution of one configuration.
type Outcome struct {
	// StepSeconds is the modeled wall time per timestep.
	StepSeconds float64
	// TSps is timesteps per second (the paper's performance metric).
	TSps float64
	// Tasks is the per-rank per-step time by Table 1 task.
	Tasks [][core.NumTasks]float64
	// MPI is the per-rank per-step modeled MPI profile.
	MPI []MPIFuncSeconds
	// MPIPct is each rank's MPI share of wall time (Figure 4 top).
	MPIPct []float64
	// ImbalancePct is the wait share of wall time (Figure 4 bottom).
	ImbalancePct []float64
	// PowerWatts is the modeled node draw.
	PowerWatts float64
	// EnergyEff is TS/s/W.
	EnergyEff float64
	// CoreUtil is the per-rank compute utilization.
	CoreUtil []float64
}

// pairCost resolves the per-pair cost for a style and precision.
func (c Costs) pairCost(style string, prec pair.Precision) float64 {
	var base float64
	switch style {
	case "lj/cut":
		base = c.PairLJ
	case "lj/charmm/coul/long":
		base = c.PairCharmm
	case "eam":
		base = c.PairEAM
	case "gran/hooke/history":
		base = c.PairGran
	default:
		base = c.PairLJ
	}
	switch prec {
	case pair.Double:
		return base * c.DoubleFactor
	case pair.Single:
		return base * c.SingleFactor
	default:
		return base
	}
}

// EvaluateCPU prices a measured run on the CPU instance and reconstructs
// the parallel timeline.
func EvaluateCPU(in Input) Outcome {
	P := in.Ranks
	steps := float64(in.Steps)
	co := in.Costs
	hs := in.Instance.HostSpeed
	cPair := co.pairCost(in.PairStyle, in.Precision) * hs

	// Intra-rank worker pool: the threadable kernels divide their compute
	// across effW workers, capped at the cores available per rank (extra
	// workers beyond physical cores only add sync overhead).
	effW := in.WorkersPerRank
	if effW < 1 {
		effW = 1
	}
	if perRankCores := in.Instance.CPU.Cores() / maxInt(P, 1); effW > perRankCores && perRankCores >= 1 {
		effW = perRankCores
	}
	fW := float64(effW)

	comp := make([][core.NumTasks]float64, P) // compute-only portions
	commData := make([]float64, P)            // modeled transfer time
	kspaceComm := make([]float64, P)          // FFT exchange time
	allRed := make([]float64, P)              // collective time
	logP := math.Log2(float64(maxInt(P, 2)))

	for r := 0; r < P; r++ {
		c := in.PerRank[r]
		var t [core.NumTasks]float64
		t[core.TaskPair] = float64(c.PairOps) / steps * cPair
		// The kernel walks the whole stored list each step; entries that
		// fail the cutoff test still cost a distance check.
		if c.NeighBuilds > 0 {
			avgList := float64(c.NeighPairs) / float64(c.NeighBuilds)
			if rejected := avgList - float64(c.PairOps)/steps; rejected > 0 {
				t[core.TaskPair] += rejected * co.PairReject * hs
			}
		}
		t[core.TaskPair] /= fW
		t[core.TaskBond] = float64(c.BondTerms) / steps * co.Bond * hs
		// The engine computes the full replicated mesh per rank; the
		// platform runs a distributed FFT: 1/P of the butterflies and
		// grid ops per rank, plus transpose exchanges (priced below).
		// Map/spread/interpolate and the per-plane grid ops are threaded
		// by the intra-rank pool; the FFT butterflies stay serial per rank.
		t[core.TaskKspace] = ((float64(c.KspaceSpreadOps)*co.KspaceSpread+
			float64(c.KspaceInterpOps)*co.KspaceInterp+
			float64(c.KspaceMapOps)*co.KspaceMap+
			float64(c.KspaceGridOps)*co.KspaceGrid/float64(P))/fW +
			float64(c.KspaceFFTOps)*co.KspaceFFT/float64(P)) / steps * hs
		t[core.TaskNeigh] = (float64(c.NeighChecks)*co.NeighCheck +
			float64(c.NeighPairs)*co.NeighStore) / steps * hs / fW
		t[core.TaskModify] = float64(c.ModifyOps) / steps * co.Modify * hs
		t[core.TaskOutput] = float64(c.ThermoEvals) / steps * co.Output * hs *
			float64(in.NGlobal) / float64(maxInt(P, 1))
		// Residual bookkeeping (force zeroing, wrap checks): proportional
		// to local atoms.
		t[core.TaskOther] = float64(in.NGlobal) / float64(P) * 0.6e-9 * hs
		if effW > 1 {
			// Pool dispatch+join barriers per step: two pair phases, four
			// neighbor-build stages per rebuild, and the PPPM stages.
			syncs := 2.0
			if c.NeighBuilds > 0 {
				syncs += 4 * float64(c.NeighBuilds) / steps
			}
			if c.KspaceGridPts > 0 {
				syncs += 8
			}
			t[core.TaskOther] += syncs * co.ThreadSync * float64(effW-1)
		}
		comp[r] = t

		// Halo + migration transfers.
		commData[r] = (float64(c.CommMsgs)*co.MsgLatency +
			float64(c.CommBytes)*co.ByteTime) / steps
		// Distributed-FFT remaps: four brick<->pencil exchanges per step
		// (1 forward + 3 inverse transforms), each moving this rank's
		// slab of the single-precision mesh (the paper's -DFFT_SINGLE).
		if c.KspaceGridPts > 0 {
			slabBytes := float64(c.KspaceGridPts) / steps / float64(P) * 8
			kspaceComm[r] = 4 * (co.MsgLatency*logP + slabBytes*co.ByteTime)
			// Mesh reduction: priced from the butterfly's measured shape —
			// per-hop latency on the 2·log2 P critical path plus this
			// rank's actual send-side bytes (~2·mesh·8·(P-1)/P).
			kspaceComm[r] += (float64(c.KspaceCommHops)*co.MsgLatency +
				float64(c.KspaceCommBytes)*co.ByteTime) / steps
		}
		// Collectives (thermo, NPT, rebuild votes): priced from the MPI
		// profile's measured tree depth, minus the mesh-reduction hops
		// priced under kspace above. Profiles recorded without hop
		// instrumentation fall back to calls x log2 P.
		fa := in.MPI[r].Funcs[mpi.FuncAllreduce]
		arHops := float64(fa.Hops) - float64(c.KspaceCommHops)
		if fa.Hops == 0 {
			arCalls := float64(fa.Calls) - float64(c.KspaceCommMsgs)
			arHops = arCalls * logP
		}
		if arHops < 0 {
			arHops = 0
		}
		allRed[r] = arHops / steps * co.ReduceLatSeq
	}

	// Bulk-synchronous timeline: every rank advances together; the step
	// time is set by the slowest rank's compute + transfer, and the rest
	// wait (the paper's MPI imbalance).
	busiest := 0.0
	for r := 0; r < P; r++ {
		tot := sum(comp[r]) + commData[r] + kspaceComm[r] + allRed[r]
		if tot > busiest {
			busiest = tot
		}
	}
	// MPI_Init-related overhead (§5.1) shows up in the whole-program MPI
	// profile (Figures 4/5), not in the run-loop timers that define TS/s
	// and the Figure 3 breakdown; it overlays the timeline below.
	initFrac := co.InitFrac * float64(P)
	if initFrac > 0.6 {
		initFrac = 0.6
	}
	stepWall := busiest
	profWall := stepWall * (1 + initFrac)

	out := Outcome{
		StepSeconds:  stepWall,
		TSps:         1 / stepWall,
		Tasks:        make([][core.NumTasks]float64, P),
		MPI:          make([]MPIFuncSeconds, P),
		MPIPct:       make([]float64, P),
		ImbalancePct: make([]float64, P),
		CoreUtil:     make([]float64, P),
	}
	for r := 0; r < P; r++ {
		active := sum(comp[r]) + commData[r] + kspaceComm[r] + allRed[r]
		wait := busiest - active
		if wait < 0 {
			wait = 0
		}
		initT := stepWall * initFrac

		t := comp[r]
		// LAMMPS files halo exchange and waiting under Comm, and FFT
		// communication under Kspace.
		t[core.TaskComm] = commData[r] + wait + allRed[r]
		t[core.TaskKspace] += kspaceComm[r]
		out.Tasks[r] = t

		m := MPIFuncSeconds{
			Init:      initT,
			Send:      kspaceComm[r] * 0.75,
			Sendrecv:  commData[r] * 0.8,
			Wait:      wait + commData[r]*0.2 + kspaceComm[r]*0.25,
			Allreduce: allRed[r],
			Others:    0.02 * (commData[r] + allRed[r]),
		}
		out.MPI[r] = m
		out.MPIPct[r] = 100 * m.Total() / profWall
		out.ImbalancePct[r] = 100 * (wait + allRed[r]*0.5) / profWall
		out.CoreUtil[r] = sum(comp[r]) / stepWall
	}
	out.PowerWatts = in.Instance.NodePower(out.CoreUtil, nil)
	out.EnergyEff = out.TSps / out.PowerWatts
	return out
}

func sum(t [core.NumTasks]float64) float64 {
	var s float64
	for _, v := range t {
		s += v
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
