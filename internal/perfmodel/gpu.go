package perfmodel

import (
	"fmt"
	"math"

	"gomd/internal/core"
	"gomd/internal/pair"
)

// GPUCosts are the V100 device-model constants: kernel throughputs at
// full occupancy, transfer parameters, and the host/device split of the
// LAMMPS GPU package's offload schedule. Calibrated against Figures 9,
// 13, and 16 (see EXPERIMENTS.md).
type GPUCosts struct {
	// Device kernel throughputs, operations per second.
	RateLJ     float64 // k_lj_fast pair evals/s
	RateCharmm float64 // k_charmm_long pair evals/s
	RateEAM    float64 // k_eam_fast pair evals/s
	RateEAMEn  float64 // k_energy_fast pair evals/s
	RateNeigh  float64 // calc_neigh_list_cell distance checks/s
	RateSpread float64 // make_rho grid updates/s
	RateInterp float64 // interp grid reads/s
	RateMap    float64 // particle_map ops/s

	// DoubleFactor inflates kernel time at fp64 (V100 fp64:fp32 = 1:2
	// peak, less in practice for memory-bound kernels).
	DoubleFactor float64
	SingleFactor float64

	// Transfers.
	PCIeLatency  float64 // per memcpy call
	KernelLaunch float64 // per kernel launch
	// XferBytesPerAtom is the per-step host<->device traffic per local
	// atom beyond the raw coordinates (packed neighbor/type/force
	// sub-buffers of the GPU package).
	XferBytesPerAtom float64
	// MeshBytesPerPoint is the per-step host<->device traffic per PPPM
	// mesh point (charge brick up, field brick down) — the term behind
	// the paper's observation that lowering the error threshold makes
	// CUDA memcpy HtoD dominate.
	MeshBytesPerPoint float64
}

// GPUCostsV100 returns the calibrated V100 constants.
func GPUCostsV100() GPUCosts {
	return GPUCosts{
		RateLJ:     9.5e9,
		RateCharmm: 12.0e9,
		RateEAM:    5.0e9,
		RateEAMEn:  7.0e9,
		RateNeigh:  15.0e9,
		RateSpread: 8.0e9,
		RateInterp: 8.0e9,
		RateMap:    5.0e9,

		DoubleFactor: 1.9,
		SingleFactor: 0.92,

		PCIeLatency:       15e-6,
		KernelLaunch:      8e-6,
		XferBytesPerAtom:  16,
		MeshBytesPerPoint: 4,
	}
}

// GPUKernelProfile is the per-device, per-step kernel and data-movement
// breakdown of Figure 8.
type GPUKernelProfile struct {
	MemcpyHtoD float64
	MemcpyDtoH float64
	Memset     float64

	PairKernel    string // style-specific name, e.g. "k_lj_fast"
	PairSeconds   float64
	PairEnergy    float64 // k_energy_fast (EAM only)
	NeighKernel   float64 // calc_neigh_list_cell
	MakeRho       float64
	ParticleMap   float64
	Interp        float64
	KernelSpecial float64
	KernelZero    float64
	Transpose     float64
}

// Total returns the device-busy seconds of the profile.
func (p GPUKernelProfile) Total() float64 {
	return p.MemcpyHtoD + p.MemcpyDtoH + p.Memset + p.PairSeconds +
		p.PairEnergy + p.NeighKernel + p.MakeRho + p.ParticleMap +
		p.Interp + p.KernelSpecial + p.KernelZero + p.Transpose
}

// GPUInput extends Input with the device configuration.
type GPUInput struct {
	Input
	Devices int
	// RanksPerDevice is how many MPI processes time-multiplex one GPU
	// (the paper tunes this manually; 6 matches their "no more than 48
	// beneficial" observation on the 52-core host).
	RanksPerDevice int
	GPUCosts       GPUCosts
}

// GPUOutcome is the modeled GPU-instance execution.
type GPUOutcome struct {
	Outcome
	// Kernels is the per-device kernel profile (Figure 8).
	Kernels []GPUKernelProfile
	// DeviceUtil is the kernel-busy share per device.
	DeviceUtil []float64
}

// precBytes returns bytes per coordinate component on the wire.
func precBytes(p pair.Precision) float64 {
	if p == pair.Double {
		return 8
	}
	return 4
}

// EvaluateGPU prices a measured run on the GPU instance under the LAMMPS
// GPU package offload schedule: pair forces and neighbor construction on
// the device, bonded forces / fixes (incl. SHAKE) / FFTs on the host,
// PPPM charge spreading and interpolation on the device with mesh bricks
// crossing PCIe each step.
func EvaluateGPU(in GPUInput) (GPUOutcome, error) {
	if in.PairStyle == "gran/hooke/history" {
		// As in the paper (§6): the standard GPU package has no
		// gran/hooke kernel, so Chute is excluded from GPU analysis.
		return GPUOutcome{}, fmt.Errorf("perfmodel: pair style %q unsupported by the GPU package", in.PairStyle)
	}
	P := in.Ranks
	if in.Devices*in.RanksPerDevice < P {
		return GPUOutcome{}, fmt.Errorf("perfmodel: %d ranks exceed %d devices x %d ranks/device",
			P, in.Devices, in.RanksPerDevice)
	}
	steps := float64(in.Steps)
	g := in.GPUCosts
	co := in.Costs
	hs := in.Instance.HostSpeed
	prec := precBytes(in.Precision)
	kprec := 1.0
	switch in.Precision {
	case pair.Double:
		kprec = g.DoubleFactor
	case pair.Single:
		kprec = g.SingleFactor
	}

	// Per-rank pieces.
	hostT := make([]float64, P)
	xferT := make([]float64, P)
	kernT := make([]float64, P)
	profiles := make([]GPUKernelProfile, in.Devices)
	kernelName := map[string]string{
		"lj/cut":              "k_lj_fast",
		"lj/charmm/coul/long": "k_charmm_long",
		"eam":                 "k_eam_fast",
	}[in.PairStyle]

	logP := math.Log2(float64(maxInt(P, 2)))
	commData := make([]float64, P)
	fftHost := make([]float64, P)

	for r := 0; r < P; r++ {
		c := in.PerRank[r]
		dev := r / in.RanksPerDevice
		nLocal := float64(in.NGlobal) / float64(P)

		// --- Host side: bonded forces, fixes (incl. SHAKE), output, FFT.
		host := float64(c.BondTerms)/steps*co.Bond*hs +
			float64(c.ModifyOps)/steps*co.Modify*hs +
			float64(c.ThermoEvals)/steps*co.Output*hs*nLocal
		fft := (float64(c.KspaceFFTOps)*co.KspaceFFT +
			float64(c.KspaceGridOps)*co.KspaceGrid) / steps * hs / float64(P)
		fftHost[r] = fft
		host += fft
		hostT[r] = host

		// --- Transfers per step: positions up, forces down, plus the
		// PPPM mesh brick both ways, plus neighbor data on rebuilds.
		rebuildFrac := float64(c.NeighBuilds) / steps
		htodBytes := nLocal*(3*prec+g.XferBytesPerAtom) + rebuildFrac*nLocal*16
		dtohBytes := nLocal * (3*prec + g.XferBytesPerAtom*0.5)
		meshBytes := 0.0
		if c.KspaceGridPts > 0 {
			// Each process ships the full replicated charge/field mesh
			// across PCIe every step — the structural reason the paper's
			// §7 GPU runs collapse at tight error thresholds (CUDA
			// memcpy HtoD "grows substantially, shadowing all other
			// CUDA API and kernel calls").
			meshBytes = float64(c.KspaceGridPts) / steps * g.MeshBytesPerPoint
		}
		pcie := in.Instance.GPU.PCIeGBs * 1e9
		// The GPU package issues several memcpys per step (positions,
		// types on rebuild, force/energy/virial sub-buffers).
		htod := 3*g.PCIeLatency + (htodBytes+meshBytes)/pcie
		dtoh := 3*g.PCIeLatency + (dtohBytes+meshBytes)/pcie
		xferT[r] = htod + dtoh

		// --- Device kernels.
		pairOpsFull := 2 * float64(c.PairOps) / steps // device uses full lists
		var kPair, kPairEn float64
		switch in.PairStyle {
		case "eam":
			// The engine meters both EAM passes in PairOps; the GPU
			// package splits them across two kernels.
			kPair = 0.5 * pairOpsFull / g.RateEAM * kprec
			kPairEn = 0.5 * pairOpsFull / g.RateEAMEn * kprec
		case "lj/charmm/coul/long":
			kPair = pairOpsFull / g.RateCharmm * kprec
		default:
			kPair = pairOpsFull / g.RateLJ * kprec
		}
		kNeigh := float64(c.NeighChecks) / steps / g.RateNeigh
		kRho := float64(c.KspaceSpreadOps) / steps / g.RateSpread
		kMap := float64(c.KspaceMapOps) / steps / g.RateMap
		kInterp := float64(c.KspaceInterpOps) / steps / g.RateInterp
		kZero := nLocal * 0.05e-9
		kSpecial := 0.0
		if c.BondTerms > 0 {
			kSpecial = nLocal * 0.15e-9 // special-neighbor mask kernel
		}
		launches := 12.0
		if c.KspaceGridPts > 0 {
			launches += 6
		}
		kernT[r] = kPair + kPairEn + kNeigh + kRho + kMap + kInterp +
			kZero + kSpecial + launches*g.KernelLaunch

		// Device profile accumulation (per-step seconds).
		pr := &profiles[dev]
		pr.PairKernel = kernelName
		pr.MemcpyHtoD += htod
		pr.MemcpyDtoH += dtoh
		pr.Memset += nLocal * 0.02e-9
		pr.PairSeconds += kPair
		pr.PairEnergy += kPairEn
		pr.NeighKernel += kNeigh
		pr.MakeRho += kRho
		pr.ParticleMap += kMap
		pr.Interp += kInterp
		pr.KernelZero += kZero
		pr.KernelSpecial += kSpecial
		if c.KspaceGridPts > 0 {
			pr.Transpose += fft * 0.2
		}

		// --- Host-side MPI (halo between ranks).
		commData[r] = (float64(c.CommMsgs)*co.MsgLatency +
			float64(c.CommBytes)*co.ByteTime) / steps
		if c.KspaceGridPts > 0 {
			slabBytes := float64(c.KspaceGridPts) / steps / float64(P) * 8
			commData[r] += 4 * (co.MsgLatency*logP + slabBytes*co.ByteTime)
		}
	}

	// Timeline: per device, PCIe + kernels serialize across its ranks;
	// host work runs on distinct cores in parallel.
	busiest := 0.0
	for d := 0; d < in.Devices; d++ {
		lo := d * in.RanksPerDevice
		hi := minInt(lo+in.RanksPerDevice, P)
		if lo >= P {
			break
		}
		devBusy := 0.0
		hostMax := 0.0
		for r := lo; r < hi; r++ {
			devBusy += xferT[r] + kernT[r]
			h := hostT[r] + commData[r]
			if h > hostMax {
				hostMax = h
			}
		}
		if t := devBusy + hostMax; t > busiest {
			busiest = t
		}
	}
	initFrac := in.Costs.InitFrac * float64(P) * 0.5
	if initFrac > 0.5 {
		initFrac = 0.5
	}
	stepWall := busiest
	profWall := stepWall * (1 + initFrac)

	out := GPUOutcome{
		Outcome: Outcome{
			StepSeconds:  stepWall,
			TSps:         1 / stepWall,
			Tasks:        make([][core.NumTasks]float64, P),
			MPI:          make([]MPIFuncSeconds, P),
			MPIPct:       make([]float64, P),
			ImbalancePct: make([]float64, P),
			CoreUtil:     make([]float64, P),
		},
		Kernels:    profiles,
		DeviceUtil: make([]float64, in.Devices),
	}
	for d := range profiles {
		kernOnly := profiles[d].Total() - profiles[d].MemcpyHtoD - profiles[d].MemcpyDtoH
		out.DeviceUtil[d] = kernOnly / stepWall
		if out.DeviceUtil[d] > 1 {
			out.DeviceUtil[d] = 1
		}
	}
	for r := 0; r < P; r++ {
		active := hostT[r] + xferT[r] + kernT[r] + commData[r]
		wait := stepWall - active
		if wait < 0 {
			wait = 0
		}
		var t [core.NumTasks]float64
		c := in.PerRank[r]
		// Map to the paper's task taxonomy: device pair time plus its
		// transfers land in Pair; host fixes in Modify; neighbor kernel
		// in Neigh; kspace kernels + mesh traffic + host FFT in Kspace.
		t[core.TaskPair] = kernT[r] * pairShare(in.PairStyle, c) / 1
		t[core.TaskNeigh] = float64(c.NeighChecks) / steps / in.GPUCosts.RateNeigh
		t[core.TaskKspace] = fftHost[r] +
			(float64(c.KspaceSpreadOps)/steps/in.GPUCosts.RateSpread +
				float64(c.KspaceMapOps)/steps/in.GPUCosts.RateMap +
				float64(c.KspaceInterpOps)/steps/in.GPUCosts.RateInterp)
		t[core.TaskBond] = float64(c.BondTerms) / steps * co.Bond * hs
		t[core.TaskModify] = float64(c.ModifyOps) / steps * co.Modify * hs
		t[core.TaskOutput] = float64(c.ThermoEvals) / steps * co.Output * hs *
			float64(in.NGlobal) / float64(P)
		t[core.TaskComm] = commData[r] + xferT[r] + wait
		t[core.TaskOther] = stepWall - sum(t)
		if t[core.TaskOther] < 0 {
			t[core.TaskOther] = 0
		}
		out.Tasks[r] = t
		m := MPIFuncSeconds{
			Init:      stepWall * initFrac,
			Sendrecv:  commData[r] * 0.8,
			Wait:      wait + commData[r]*0.2,
			Allreduce: 0,
		}
		out.MPI[r] = m
		out.MPIPct[r] = 100 * m.Total() / profWall
		out.ImbalancePct[r] = 100 * wait / profWall
		out.CoreUtil[r] = (hostT[r]) / stepWall
	}
	gpuUtil := make([]float64, in.Devices)
	copy(gpuUtil, out.DeviceUtil)
	out.PowerWatts = in.Instance.NodePower(out.CoreUtil, gpuUtil)
	out.EnergyEff = out.TSps / out.PowerWatts
	return out, nil
}

// pairShare estimates the fraction of a rank's device time spent in pair
// kernels (for the Figure 7 task mapping).
func pairShare(style string, c core.Counters) float64 {
	pairOps := float64(c.PairOps)
	total := pairOps + float64(c.NeighChecks)*0.3 +
		float64(c.KspaceSpreadOps+c.KspaceInterpOps)*0.5
	if total == 0 {
		return 0
	}
	return pairOps / total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
