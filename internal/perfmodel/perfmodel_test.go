package perfmodel_test

import (
	"math"
	"testing"

	"gomd/internal/core"
	"gomd/internal/mpi"
	"gomd/internal/pair"
	"gomd/internal/perfmodel"
)

// syntheticInput builds a balanced per-rank counter set resembling an LJ
// run: n atoms, ~27 half-pairs per atom per step, halo traffic on the
// surface.
func syntheticInput(ranks, atoms, steps int) perfmodel.Input {
	per := make([]core.Counters, ranks)
	ms := make([]mpi.Stats, ranks)
	nLocal := atoms / ranks
	for r := range per {
		per[r] = core.Counters{
			Steps:       int64(steps),
			PairOps:     int64(27 * nLocal * steps),
			NeighChecks: int64(40 * nLocal * steps / 10),
			NeighPairs:  int64(27 * nLocal * steps / 10),
			NeighBuilds: int64(steps / 10),
			ModifyOps:   int64(2 * nLocal * steps),
			CommMsgs:    int64(12 * steps),
			CommBytes:   int64(30 * 100 * steps), // ~100 ghosts
		}
		ms[r].Funcs[mpi.FuncAllreduce].Calls = int64(steps)
	}
	return perfmodel.Input{
		Instance:  perfmodel.CPUInstance(),
		Costs:     perfmodel.CPUCosts(),
		Ranks:     ranks,
		Steps:     steps,
		PairStyle: "lj/cut",
		Precision: pair.Mixed,
		NGlobal:   atoms,
		PerRank:   per,
		MPI:       ms,
	}
}

// TestCPUStrongScalingMonotonic: with per-rank work divided, more ranks
// must give more TS/s, with sub-linear efficiency.
func TestCPUStrongScalingMonotonic(t *testing.T) {
	prev := 0.0
	base := 0.0
	for _, ranks := range []int{1, 2, 4, 8, 16, 32, 64} {
		out := perfmodel.EvaluateCPU(syntheticInput(ranks, 256000, 10))
		if out.TSps <= prev {
			t.Errorf("%d ranks: TS/s %v not above %v", ranks, out.TSps, prev)
		}
		if ranks == 1 {
			base = out.TSps
		} else if out.TSps > base*float64(ranks)*1.001 {
			t.Errorf("%d ranks: superlinear speedup %v vs base %v", ranks, out.TSps, base)
		}
		prev = out.TSps
	}
}

// TestWorkersSpeedup: intra-rank workers must raise TS/s, stay below the
// ideal linear speedup (sync overhead), and cap at the cores per rank.
func TestWorkersSpeedup(t *testing.T) {
	mk := func(ranks, workers int) float64 {
		in := syntheticInput(ranks, 256000, 10)
		in.WorkersPerRank = workers
		return perfmodel.EvaluateCPU(in).TSps
	}
	base := mk(8, 1)
	if mk(8, 0) != base {
		t.Error("workers=0 must price identically to workers=1")
	}
	prev := base
	for _, w := range []int{2, 4, 8} {
		got := mk(8, w)
		if got <= prev {
			t.Errorf("workers=%d: TS/s %v not above %v", w, got, prev)
		}
		if got >= base*float64(w) {
			t.Errorf("workers=%d: speedup %.2f not sub-linear", w, got/base)
		}
		prev = got
	}
	// 64 ranks on a 64-core instance leave one core per rank: extra
	// workers must not speed anything up.
	if w4, w1 := mk(64, 4), mk(64, 1); w4 > w1*1.0001 {
		t.Errorf("oversubscribed workers sped up the model: %v vs %v", w4, w1)
	}
}

// TestImbalanceFromSkew: giving one rank extra work must surface as wait
// time on the others.
func TestImbalanceFromSkew(t *testing.T) {
	in := syntheticInput(8, 256000, 10)
	in.PerRank[0].PairOps *= 3
	out := perfmodel.EvaluateCPU(in)
	if out.ImbalancePct[0] >= out.ImbalancePct[1] {
		t.Errorf("loaded rank imbalance %v >= idle rank %v",
			out.ImbalancePct[0], out.ImbalancePct[1])
	}
	if out.ImbalancePct[1] < 1 {
		t.Errorf("skew produced no wait: %v", out.ImbalancePct[1])
	}
	balanced := perfmodel.EvaluateCPU(syntheticInput(8, 256000, 10))
	if out.TSps >= balanced.TSps {
		t.Error("skewed run cannot be faster than balanced")
	}
}

// TestPrecisionOrdering: double < mixed < single pair cost ordering must
// surface in TS/s.
func TestPrecisionOrdering(t *testing.T) {
	mk := func(p pair.Precision) float64 {
		in := syntheticInput(8, 256000, 10)
		in.Precision = p
		return perfmodel.EvaluateCPU(in).TSps
	}
	s, m, d := mk(pair.Single), mk(pair.Mixed), mk(pair.Double)
	if !(s > m && m > d) {
		t.Errorf("precision ordering broken: single %v mixed %v double %v", s, m, d)
	}
}

// TestScaleCountersLaws: volume terms scale with f, surface terms with
// f^(2/3).
func TestScaleCountersLaws(t *testing.T) {
	c := core.Counters{
		Steps: 10, PairOps: 1000, BondTerms: 500, ModifyOps: 300,
		CommBytes: 900, GhostAtoms: 90, CommMsgs: 12,
		KspaceGridPts: 10 * 1000, KspaceFFTOps: 5000, KspaceGridOps: 700,
		KspaceCommBytes: 8000,
	}
	s := perfmodel.ScaleSpec{Factor: 8, TargetGridPts: 8000, TargetGridDims: [3]int{20, 20, 20}}
	out := perfmodel.ScaleCounters(c, s)
	if out.PairOps != 8000 || out.BondTerms != 4000 || out.ModifyOps != 2400 {
		t.Errorf("volume scaling: %+v", out)
	}
	if out.CommBytes != 3600 || out.GhostAtoms != 360 { // 8^(2/3) = 4
		t.Errorf("surface scaling: %d %d", out.CommBytes, out.GhostAtoms)
	}
	if out.CommMsgs != 12 {
		t.Errorf("message count must not scale: %d", out.CommMsgs)
	}
	if out.KspaceGridPts != 8000*10 {
		t.Errorf("grid points: %d", out.KspaceGridPts)
	}
	if out.KspaceGridOps != 700*8 { // 8000/1000
		t.Errorf("grid ops: %d", out.KspaceGridOps)
	}
	// 20 = 2^2*5: 3 stages; butterflies = 3 * (20*3*400) = 72000; x4
	// transforms x10 steps.
	if out.KspaceFFTOps != 4*3*(20*3*400)*10 {
		t.Errorf("fft ops: %d", out.KspaceFFTOps)
	}
	// Identity passes through.
	id := perfmodel.ScaleCounters(c, perfmodel.ScaleSpec{Factor: 1})
	if id != c {
		t.Error("identity scaling changed counters")
	}
}

// TestGPURejectsChute: the GPU package has no granular kernel.
func TestGPURejectsChute(t *testing.T) {
	in := perfmodel.GPUInput{
		Input:          syntheticInput(6, 32000, 10),
		Devices:        1,
		RanksPerDevice: 6,
		GPUCosts:       perfmodel.GPUCostsV100(),
	}
	in.PairStyle = "gran/hooke/history"
	if _, err := perfmodel.EvaluateGPU(in); err == nil {
		t.Fatal("chute must be rejected by the GPU model")
	}
}

// TestGPUEfficiencyDropsWithDevices: fixed per-rank overheads must erode
// multi-device efficiency, especially for small systems (the paper's
// Figure 9 bottom).
func TestGPUEfficiencyDropsWithDevices(t *testing.T) {
	tsps := func(devices, atoms int) float64 {
		in := perfmodel.GPUInput{
			Input:          syntheticInput(devices*6, atoms, 10),
			Devices:        devices,
			RanksPerDevice: 6,
			GPUCosts:       perfmodel.GPUCostsV100(),
		}
		in.Instance = perfmodel.GPUInstance()
		out, err := perfmodel.EvaluateGPU(in)
		if err != nil {
			t.Fatal(err)
		}
		return out.TSps
	}
	for _, atoms := range []int{32000, 2048000} {
		e8 := 100 * tsps(8, atoms) / (8 * tsps(1, atoms))
		if e8 >= 100 {
			t.Errorf("atoms=%d: 8-device efficiency %v >= 100", atoms, e8)
		}
		t.Logf("atoms=%dk: 8-device parallel efficiency %.1f%%", atoms/1000, e8)
	}
	small := 100 * tsps(8, 32000) / (8 * tsps(1, 32000))
	large := 100 * tsps(8, 2048000) / (8 * tsps(1, 2048000))
	if small >= large {
		t.Errorf("small systems must scale worse: 32k %v vs 2048k %v", small, large)
	}
}

// TestPowerModelBounds: node power must sit between idle and the TDP
// envelope and grow with utilization.
func TestPowerModelBounds(t *testing.T) {
	inst := perfmodel.CPUInstance()
	idleUtil := make([]float64, 64)
	full := make([]float64, 64)
	for i := range full {
		full[i] = 1
	}
	pIdle := inst.NodePower(idleUtil, nil)
	pFull := inst.NodePower(full, nil)
	if pIdle < 50 || pIdle > 200 {
		t.Errorf("idle power %v implausible", pIdle)
	}
	if pFull <= pIdle {
		t.Error("full load must draw more than idle")
	}
	if pFull > 2*inst.CPU.TDPWatts*1.2 {
		t.Errorf("full power %v exceeds TDP envelope", pFull)
	}
	gpuInst := perfmodel.GPUInstance()
	gIdle := gpuInst.NodePower(make([]float64, 48), make([]float64, 8))
	gFull := gpuInst.NodePower(full[:48], []float64{1, 1, 1, 1, 1, 1, 1, 1})
	if gFull-gIdle < 8*100 {
		t.Errorf("8 active V100s add only %v W", gFull-gIdle)
	}
}

// TestKspaceAccuracySlowdown: pricing the same measurement with a larger
// target mesh must reduce TS/s (the §7 mechanism).
func TestKspaceAccuracySlowdown(t *testing.T) {
	base := syntheticInput(8, 256000, 10)
	for r := range base.PerRank {
		base.PerRank[r].KspaceGridPts = 10 * 48 * 48 * 48
		base.PerRank[r].KspaceFFTOps = 10 * 4 * 3 * 48 * 48 * 48 * 7
		base.PerRank[r].KspaceSpreadOps = int64(125 * 32000 * 10)
		base.PerRank[r].KspaceInterpOps = int64(125 * 32000 * 10)
	}
	base.PairStyle = "lj/charmm/coul/long"
	coarse := perfmodel.EvaluateCPU(base)

	fine := base
	fine.PerRank = append([]core.Counters(nil), base.PerRank...)
	for r := range fine.PerRank {
		fine.PerRank[r] = perfmodel.ScaleCounters(base.PerRank[r], perfmodel.ScaleSpec{
			Factor: 1, TargetGridPts: 192 * 192 * 192, TargetGridDims: [3]int{192, 192, 192},
		})
	}
	fineOut := perfmodel.EvaluateCPU(fine)
	if fineOut.TSps >= coarse.TSps {
		t.Errorf("larger mesh must be slower: %v vs %v", fineOut.TSps, coarse.TSps)
	}
	if math.IsNaN(fineOut.TSps) {
		t.Error("NaN TS/s")
	}
}

// TestRoofline: intensity math and boundedness classification.
func TestRoofline(t *testing.T) {
	r := perfmodel.CPURoofline()
	if r.Ridge() < 5 || r.Ridge() > 40 {
		t.Errorf("ridge %v flops/byte implausible for a modern server", r.Ridge())
	}
	c := core.Counters{Steps: 10, PairOps: 1000 * 10, NeighChecks: 2000 * 10, ModifyOps: 100 * 10}
	tasks := r.Analyze("lj/cut", c)
	if len(tasks) != 3 {
		t.Fatalf("tasks %d", len(tasks))
	}
	for _, ti := range tasks {
		if ti.Intensity <= 0 || ti.AttainableGflops <= 0 {
			t.Errorf("%v: bad placement %+v", ti.Task, ti)
		}
		if ti.AttainableGflops > r.PeakGflops+1e-9 {
			t.Errorf("%v exceeds peak", ti.Task)
		}
		// All MD tasks here are memory-bound on this machine (intensity
		// well below the ~20 F/B ridge).
		if !ti.MemoryBound {
			t.Errorf("%v should be memory-bound at intensity %v", ti.Task, ti.Intensity)
		}
	}
	// The charmm kernel is more arithmetic-dense than lj.
	lj := r.Analyze("lj/cut", c)[0].Intensity
	ch := r.Analyze("lj/charmm/coul/long", c)[0].Intensity
	if ch <= lj {
		t.Errorf("charmm intensity %v should exceed lj %v", ch, lj)
	}
}
