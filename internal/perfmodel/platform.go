// Package perfmodel converts the engine's measured operation counters
// into platform time, power, and efficiency for the two instances of the
// paper's Table 3 — the dual-socket Xeon 8358 CPU instance and the
// 8×V100 GPU instance.
//
// The division of labor (DESIGN.md): the real engine, decomposed over the
// simulated MPI runtime, *measures* what happens per rank (pair
// evaluations, neighbor work, mesh sizes, halo bytes, migration); this
// package *prices* those counters with per-operation cost constants
// calibrated against the paper's reported anchor numbers, and
// reconstructs the bulk-synchronous parallel timeline (compute + data
// exchange + wait). Shapes come from measurement; absolute scale comes
// from calibration. EXPERIMENTS.md tabulates paper-vs-model anchors.
package perfmodel

import "fmt"

// CPUSpec describes a CPU of Table 3.
type CPUSpec struct {
	Name        string
	Sockets     int
	CoresPer    int
	BaseGHz     float64
	TurboGHz    float64
	L2PerCoreMB float64
	L3MB        float64
	TDPWatts    float64 // per socket
}

// Cores returns the total physical cores.
func (c CPUSpec) Cores() int { return c.Sockets * c.CoresPer }

// GPUSpec describes the accelerator of Table 3.
type GPUSpec struct {
	Name     string
	SMs      int
	MemGB    int
	L2MB     float64
	GHz      float64
	TDPWatts float64
	// PCIeGBs is the effective host-device bandwidth per direction.
	PCIeGBs float64
}

// Instance is one benchmarked machine.
type Instance struct {
	Name  string
	CPU   CPUSpec
	GPUs  int
	GPU   GPUSpec
	MemGB int
	// IdleWatts is the baseline node draw.
	IdleWatts float64
	// HostSpeed scales host-side per-op costs relative to the CPU
	// instance's cores (the GPU instance's 8167M is an older, slower part).
	HostSpeed float64
}

// CPUInstance is the paper's CPU machine: 2 × Xeon Platinum 8358.
func CPUInstance() Instance {
	return Instance{
		Name: "CPU instance (2x Xeon Platinum 8358)",
		CPU: CPUSpec{
			Name: "Intel Xeon Platinum 8358", Sockets: 2, CoresPer: 32,
			BaseGHz: 2.6, TurboGHz: 3.4, L2PerCoreMB: 1, L3MB: 48,
			TDPWatts: 250,
		},
		MemGB:     1024,
		IdleWatts: 110,
		HostSpeed: 1.0,
	}
}

// GPUInstance is the paper's GPU machine: 2 × Xeon 8167M + 8 × V100.
func GPUInstance() Instance {
	return Instance{
		Name: "GPU instance (2x Xeon Platinum 8167M + 8x V100)",
		CPU: CPUSpec{
			Name: "Intel Xeon Platinum 8167M", Sockets: 2, CoresPer: 26,
			BaseGHz: 2.0, TurboGHz: 2.4, L2PerCoreMB: 1, L3MB: 35.75,
			TDPWatts: 165,
		},
		GPUs: 8,
		GPU: GPUSpec{
			Name: "NVIDIA V100", SMs: 84, MemGB: 16, L2MB: 6, GHz: 1.35,
			TDPWatts: 300, PCIeGBs: 12,
		},
		MemGB:     768,
		IdleWatts: 320,  // idle CPUs + 8 idle V100s
		HostSpeed: 1.45, // per-op host cost multiplier vs the 8358
	}
}

// NodePower models node draw from per-resource utilizations.
//
// CPU: idle + (TDP-linked) per-core active power scaled by utilization.
// GPU: idle (contained in Instance.IdleWatts) + active swing per device.
func (inst Instance) NodePower(coreUtil []float64, gpuUtil []float64) float64 {
	p := inst.IdleWatts
	activePerCore := (float64(inst.CPU.Sockets)*inst.CPU.TDPWatts - 60) / float64(inst.CPU.Cores())
	for _, u := range coreUtil {
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		p += u * activePerCore
	}
	gpuSwing := inst.GPU.TDPWatts * 0.75 // idle draw already in IdleWatts
	for _, u := range gpuUtil {
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		p += u * gpuSwing
	}
	return p
}

// String renders the instance like Table 3 (used by `mdbench -exp table3`).
func (inst Instance) String() string {
	s := fmt.Sprintf("%s\n  CPU: %s, %d sockets x %d cores, %.1f GHz (turbo %.1f), L3 %.2f MB, TDP %gW/socket\n  Memory: %d GB",
		inst.Name, inst.CPU.Name, inst.CPU.Sockets, inst.CPU.CoresPer,
		inst.CPU.BaseGHz, inst.CPU.TurboGHz, inst.CPU.L3MB, inst.CPU.TDPWatts, inst.MemGB)
	if inst.GPUs > 0 {
		s += fmt.Sprintf("\n  GPU: %d x %s (%d SMs, %d GB HBM, %.2f GHz, TDP %gW, PCIe %g GB/s)",
			inst.GPUs, inst.GPU.Name, inst.GPU.SMs, inst.GPU.MemGB, inst.GPU.GHz,
			inst.GPU.TDPWatts, inst.GPU.PCIeGBs)
	}
	return s
}
