package perfmodel

import (
	"gomd/internal/core"
	"gomd/internal/flops"
)

// Roofline places a workload on the classic roofline of an instance:
// arithmetic intensity (flops per byte of main-memory traffic) against
// the machine's peak compute and bandwidth. The paper's characterization
// stops at task breakdowns; this extension asks the follow-up question
// the breakdowns raise — which tasks are compute- versus memory-bound on
// the CPU instance.
type Roofline struct {
	// PeakGflops is the instance's aggregate FP peak (GFLOP/s).
	PeakGflops float64
	// PeakGBs is the aggregate DRAM bandwidth (GB/s).
	PeakGBs float64
}

// CPURoofline returns the dual-socket Xeon 8358 envelope: 64 cores x 2.6
// GHz x 32 FLOP/cycle (AVX-512 FMA) and 16 DDR4-3200 channels.
func CPURoofline() Roofline {
	return Roofline{
		PeakGflops: 64 * 2.6 * 32,
		PeakGBs:    16 * 25.6,
	}
}

// TaskIntensity is one task's placement on the roofline.
type TaskIntensity struct {
	Task core.Task
	// Flops and Bytes are per-step estimates.
	Flops float64
	Bytes float64
	// Intensity = Flops/Bytes; AttainableGflops is min(peak, I*BW).
	Intensity        float64
	AttainableGflops float64
	// MemoryBound reports whether the task sits left of the ridge.
	MemoryBound bool
}

// Analyze converts per-step counters (summed over ranks) into roofline
// placements for the compute-heavy tasks. The per-op cost models live in
// internal/flops — the same models kbench's BENCH_kernels.json columns
// and the live roofline.* gauges use — so predicted and measured
// intensity are directly comparable.
func (r Roofline) Analyze(style string, c core.Counters) []TaskIntensity {
	steps := float64(c.Steps)
	if steps == 0 {
		steps = 1
	}
	mk := func(task core.Task, ops float64, per flops.Cost) TaskIntensity {
		t := TaskIntensity{Task: task}
		t.Flops = ops / steps * per.Flops
		t.Bytes = ops / steps * per.Bytes
		if t.Bytes > 0 {
			t.Intensity = t.Flops / t.Bytes
		}
		t.AttainableGflops = r.PeakGflops
		if bw := t.Intensity * r.PeakGBs; bw < t.AttainableGflops {
			t.AttainableGflops = bw
			t.MemoryBound = true
		}
		return t
	}
	out := []TaskIntensity{
		mk(core.TaskPair, float64(c.PairOps), flops.Pair(style)),
		mk(core.TaskNeigh, float64(c.NeighChecks), flops.NeighCheck()),
	}
	if c.KspaceFFTOps > 0 {
		out = append(out, mk(core.TaskKspace, float64(c.KspaceFFTOps), flops.KspaceFFT()))
	}
	if c.ModifyOps > 0 {
		out = append(out, mk(core.TaskModify, float64(c.ModifyOps), flops.Modify()))
	}
	return out
}

// Ridge returns the arithmetic intensity of the machine's ridge point.
func (r Roofline) Ridge() float64 {
	if r.PeakGBs == 0 {
		return 0
	}
	return r.PeakGflops / r.PeakGBs
}
