package perfmodel

import "gomd/internal/core"

// Roofline places a workload on the classic roofline of an instance:
// arithmetic intensity (flops per byte of main-memory traffic) against
// the machine's peak compute and bandwidth. The paper's characterization
// stops at task breakdowns; this extension asks the follow-up question
// the breakdowns raise — which tasks are compute- versus memory-bound on
// the CPU instance.
type Roofline struct {
	// PeakGflops is the instance's aggregate FP peak (GFLOP/s).
	PeakGflops float64
	// PeakGBs is the aggregate DRAM bandwidth (GB/s).
	PeakGBs float64
}

// CPURoofline returns the dual-socket Xeon 8358 envelope: 64 cores x 2.6
// GHz x 32 FLOP/cycle (AVX-512 FMA) and 16 DDR4-3200 channels.
func CPURoofline() Roofline {
	return Roofline{
		PeakGflops: 64 * 2.6 * 32,
		PeakGBs:    16 * 25.6,
	}
}

// TaskIntensity is one task's placement on the roofline.
type TaskIntensity struct {
	Task core.Task
	// Flops and Bytes are per-step estimates.
	Flops float64
	Bytes float64
	// Intensity = Flops/Bytes; AttainableGflops is min(peak, I*BW).
	Intensity        float64
	AttainableGflops float64
	// MemoryBound reports whether the task sits left of the ridge.
	MemoryBound bool
}

// flopWeights estimates floating-point operations per counted engine
// operation, per task (kernel arithmetic inventories of the style
// implementations).
type flopWeights struct {
	pairFlops, pairBytes     float64
	neighFlops, neighBytes   float64
	kspaceFlops, kspaceBytes float64
	modifyFlops, modifyBytes float64
}

// weightsFor returns per-op flop/byte estimates for a pair style.
func weightsFor(style string) flopWeights {
	w := flopWeights{
		// A pair evaluation: distance (8 flops), kernel polynomial
		// (~15-40), force accumulation (6); touches two atoms' positions
		// and one force (pos reused from cache within a bin: charge ~half
		// a cache line effective).
		pairFlops: 30, pairBytes: 40,
		// A neighbor candidate check: distance + compare; streams the
		// bin's positions.
		neighFlops: 10, neighBytes: 28,
		// A k-space butterfly: complex mul+add (10 flops, 32 bytes).
		kspaceFlops: 10, kspaceBytes: 32,
		// A fix op: a handful of FMAs over one atom's state.
		modifyFlops: 12, modifyBytes: 96,
	}
	switch style {
	case "lj/charmm/coul/long":
		w.pairFlops = 55 // erfc + switching on top of LJ
	case "eam":
		w.pairFlops = 24 // per pass
	case "gran/hooke/history":
		w.pairFlops = 45
		w.pairBytes = 90 // history map traffic
	}
	return w
}

// Analyze converts per-step counters (summed over ranks) into roofline
// placements for the compute-heavy tasks.
func (r Roofline) Analyze(style string, c core.Counters) []TaskIntensity {
	steps := float64(c.Steps)
	if steps == 0 {
		steps = 1
	}
	w := weightsFor(style)
	mk := func(task core.Task, ops, flopsPer, bytesPer float64) TaskIntensity {
		t := TaskIntensity{Task: task}
		t.Flops = ops / steps * flopsPer
		t.Bytes = ops / steps * bytesPer
		if t.Bytes > 0 {
			t.Intensity = t.Flops / t.Bytes
		}
		t.AttainableGflops = r.PeakGflops
		if bw := t.Intensity * r.PeakGBs; bw < t.AttainableGflops {
			t.AttainableGflops = bw
			t.MemoryBound = true
		}
		return t
	}
	out := []TaskIntensity{
		mk(core.TaskPair, float64(c.PairOps), w.pairFlops, w.pairBytes),
		mk(core.TaskNeigh, float64(c.NeighChecks), w.neighFlops, w.neighBytes),
	}
	if c.KspaceFFTOps > 0 {
		out = append(out, mk(core.TaskKspace, float64(c.KspaceFFTOps), w.kspaceFlops, w.kspaceBytes))
	}
	if c.ModifyOps > 0 {
		out = append(out, mk(core.TaskModify, float64(c.ModifyOps), w.modifyFlops, w.modifyBytes))
	}
	return out
}

// Ridge returns the arithmetic intensity of the machine's ridge point.
func (r Roofline) Ridge() float64 {
	if r.PeakGBs == 0 {
		return 0
	}
	return r.PeakGflops / r.PeakGBs
}
