package perfmodel

import (
	"math"

	"gomd/internal/core"
)

// ScaleSpec describes how to extrapolate counters measured at a reduced
// system size to the paper's target size (the harness measures at a
// tractable size and scales by the O(·) laws of §2.1 of the paper, which
// the engine's own counters obey by construction).
type ScaleSpec struct {
	// Factor is Ntarget / Nmeasured.
	Factor float64
	// TargetGridPts, when positive, replaces the measured PPPM mesh with
	// the mesh the target system requires (computed via kspace.MeshFor).
	TargetGridPts int64
	// TargetGridDims are the per-dimension target mesh sizes (for the
	// FFT butterfly count).
	TargetGridDims [3]int
}

// Identity reports whether scaling is a no-op.
func (s ScaleSpec) Identity() bool {
	return s.Factor == 1 && s.TargetGridPts == 0
}

// ScaleCounters extrapolates one rank's counters.
//
// Volume terms (pair, bonded, per-atom fix and mesh-spread work) scale
// with Factor; halo terms scale with surface, Factor^(2/3); mesh terms
// are replaced by the target mesh; message counts are topology-bound and
// stay fixed.
func ScaleCounters(c core.Counters, s ScaleSpec) core.Counters {
	if s.Identity() {
		return c
	}
	f := s.Factor
	surf := math.Pow(f, 2.0/3.0)
	out := c
	out.PairOps = scaleI(c.PairOps, f)
	out.BondTerms = scaleI(c.BondTerms, f)
	out.NeighChecks = scaleI(c.NeighChecks, f)
	out.NeighPairs = scaleI(c.NeighPairs, f)
	out.ModifyOps = scaleI(c.ModifyOps, f)
	out.KspaceSpreadOps = scaleI(c.KspaceSpreadOps, f)
	out.KspaceInterpOps = scaleI(c.KspaceInterpOps, f)
	out.KspaceMapOps = scaleI(c.KspaceMapOps, f)
	out.CommBytes = scaleI(c.CommBytes, surf)
	out.GhostAtoms = scaleI(c.GhostAtoms, surf)
	out.MigratedAtoms = scaleI(c.MigratedAtoms, surf)

	if s.TargetGridPts > 0 && c.KspaceGridPts > 0 {
		steps := c.Steps
		if steps == 0 {
			steps = 1
		}
		measuredPts := c.KspaceGridPts / steps
		ratio := float64(s.TargetGridPts) / float64(measuredPts)
		out.KspaceGridPts = s.TargetGridPts * steps
		out.KspaceGridOps = scaleI(c.KspaceGridOps, ratio)
		out.KspaceCommBytes = scaleI(c.KspaceCommBytes, ratio)
		// Butterfly count recomputed exactly for the target mesh:
		// 4 transforms per step (1 forward + 3 inverse), each doing
		// n*log2(n) butterflies per line along each axis.
		out.KspaceFFTOps = 4 * butterflies3D(s.TargetGridDims) * steps
	}
	return out
}

// butterflies3D counts complex butterflies of one 3D transform: each 1D
// length-n mixed-radix transform does ~n ops per factor stage.
func butterflies3D(d [3]int) int64 {
	nx, ny, nz := int64(d[0]), int64(d[1]), int64(d[2])
	return nx*stages(nx)*ny*nz + ny*stages(ny)*nx*nz + nz*stages(nz)*nx*ny
}

// stages counts the 2/3/5 factor multiplicity of n.
func stages(n int64) int64 {
	var c int64
	for _, p := range []int64{2, 3, 5} {
		for n%p == 0 {
			n /= p
			c++
		}
	}
	return c
}

func scaleI(v int64, f float64) int64 {
	return int64(float64(v)*f + 0.5)
}
