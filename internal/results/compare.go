package results

import (
	"fmt"
	"math"
)

// Tolerances tune the regression comparison. Two bars, matched to what
// each column depends on: arithmetic intensity is a pure function of the
// cost models and the deterministic workload, so it is pinned tightly;
// wall time is host-dependent, so only order-of-magnitude blowups fail.
type Tolerances struct {
	// AITol is the max relative arithmetic-intensity drift (default 0.25).
	AITol float64
	// MaxSlowdown is the max ns_per_op ratio vs baseline (default 25).
	MaxSlowdown float64
}

func (t Tolerances) withDefaults() Tolerances {
	if t.AITol == 0 {
		t.AITol = 0.25
	}
	if t.MaxSlowdown == 0 {
		t.MaxSlowdown = 25
	}
	return t
}

// Failure is one comparison violation.
type Failure struct {
	// Row names the offending row ("pair_lj workers=4"), or "report" for
	// entry-level mismatches.
	Row    string
	Reason string
}

func (f Failure) String() string { return f.Row + ": " + f.Reason }

// rowKey pairs a row name with its worker count for matching.
type rowKey struct {
	name    string
	workers int
}

func rowLabel(k rowKey) string {
	if k.workers == 0 {
		return k.name
	}
	return fmt.Sprintf("%s workers=%d", k.name, k.workers)
}

// Compare diffs cur against base and returns every violation. Rows match
// by (name, workers); a row present on only one side fails in either
// direction — a kernel silently dropped from the sweep is a regression,
// and a kernel present only in the current report escaped the gate
// entirely until the baseline is regenerated. Zero-valued NsPerOp or AI
// on the baseline side disables that bar for the row (nothing meaningful
// to ratio against), but presence is still enforced.
func Compare(base, cur Entry, tol Tolerances) []Failure {
	tol = tol.withDefaults()
	var fails []Failure
	fail := func(row rowKey, format string, args ...any) {
		fails = append(fails, Failure{Row: rowLabel(row), Reason: fmt.Sprintf(format, args...)})
	}
	if base.Atoms != cur.Atoms {
		fails = append(fails, Failure{Row: "report", Reason: fmt.Sprintf(
			"baseline ran %d atoms, current %d — regenerate one of them with matching -atoms",
			base.Atoms, cur.Atoms)})
		return fails
	}
	curIdx := make(map[rowKey]Row, len(cur.Rows))
	for _, r := range cur.Rows {
		curIdx[rowKey{r.Name, r.Workers}] = r
	}
	baseIdx := make(map[rowKey]Row, len(base.Rows))
	for _, b := range base.Rows {
		k := rowKey{b.Name, b.Workers}
		baseIdx[k] = b
		c, ok := curIdx[k]
		if !ok {
			fail(k, "missing from current report")
			continue
		}
		if b.AI > 0 {
			drift := math.Abs(c.AI-b.AI) / b.AI
			if drift > tol.AITol {
				fail(k, "arithmetic intensity drifted %.1f%% (baseline %.3f, current %.3f; cost model or kernel work changed — regenerate the baseline if intended)",
					100*drift, b.AI, c.AI)
			}
		}
		if b.NsPerOp > 0 {
			ratio := float64(c.NsPerOp) / float64(b.NsPerOp)
			if ratio > tol.MaxSlowdown {
				fail(k, "%.1fx slower than baseline (%d ns vs %d ns)",
					ratio, c.NsPerOp, b.NsPerOp)
			}
		}
	}
	// Rows the baseline has never seen pass no bar at all; fail them with
	// the remedy instead of letting new kernels ride ungated until someone
	// remembers the baseline exists.
	for _, c := range cur.Rows {
		k := rowKey{c.Name, c.Workers}
		if _, ok := baseIdx[k]; !ok {
			fail(k, "missing from baseline — new row is ungated; regenerate the baseline to cover it")
		}
	}
	return fails
}
