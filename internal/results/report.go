package results

import (
	"encoding/json"
	"fmt"
	"os"
)

// KernelRow is one kernel × worker-count timing in a BENCH_kernels.json
// report (the kbench output format, shared here so kbench writes it,
// benchgate reads it, and the trajectory store ingests it without three
// copies of the schema).
type KernelRow struct {
	Kernel     string  `json:"kernel"`
	Workers    int     `json:"workers"`
	Iters      int     `json:"iters"`
	NsPerOp    int64   `json:"ns_per_op"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// Modeled arithmetic cost of one kernel invocation (internal/flops
	// priced over the measured operation counts).
	Flops float64 `json:"flops"`
	Bytes float64 `json:"bytes"`
	AI    float64 `json:"arithmetic_intensity"`
	// Gflops is the achieved rate Flops/NsPerOp (host-dependent).
	Gflops float64 `json:"gflops"`
}

// KernelReport is the BENCH_kernels.json document.
type KernelReport struct {
	Workloads []string    `json:"workloads"`
	Atoms     int         `json:"atoms"`
	GoVersion string      `json:"go_version"`
	NumCPU    int         `json:"num_cpu"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Host      string      `json:"host,omitempty"` // Fingerprint(); older reports lack it
	Kernels   []KernelRow `json:"kernels"`
}

// ReadKernelReport loads a BENCH_kernels.json file.
func ReadKernelReport(path string) (*KernelReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r KernelReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteKernelReport writes the report as indented JSON, failing loudly
// on any write or close error (a truncated benchmark report with exit
// code 0 would poison every later comparison).
func WriteKernelReport(path string, r *KernelReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// Entry converts the report into a trajectory entry. The host
// fingerprint comes from the report itself when present (reports made on
// other machines keep their identity); older reports fall back to a
// fingerprint composed from their recorded platform fields.
func (r *KernelReport) Entry(tool, gitSHA string) Entry {
	host := r.Host
	if host == "" {
		host = fmt.Sprintf("%s/%s cpu=%d %s host=", r.GOOS, r.GOARCH, r.NumCPU, r.GoVersion)
	}
	e := Entry{
		Tool:       tool,
		GitSHA:     gitSHA,
		Host:       host,
		ConfigHash: ConfigHash(struct {
			Tool      string   `json:"tool"`
			Atoms     int      `json:"atoms"`
			Workloads []string `json:"workloads"`
		}{tool, r.Atoms, r.Workloads}),
		Atoms: r.Atoms,
	}
	for _, k := range r.Kernels {
		e.Rows = append(e.Rows, Row{
			Name:    k.Kernel,
			Workers: k.Workers,
			NsPerOp: k.NsPerOp,
			Flops:   k.Flops,
			Bytes:   k.Bytes,
			AI:      k.AI,
		})
	}
	return e
}
