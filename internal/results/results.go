// Package results is the persistent performance-results layer: a shared
// schema for kernel benchmark reports (BENCH_kernels.json), an
// append-only trajectory store that accumulates one entry per commit and
// campaign, and the comparison API behind the perf-regression gate
// (cmd/benchgate).
//
// The store is a JSONL file (results/trajectory.jsonl by default): one
// Entry per line, append-only, never rewritten. Entries are keyed by
// (tool, host fingerprint, config hash, atoms) — the git SHA identifies
// an entry but deliberately stays out of the match key, so the gate can
// compare the current commit against the newest prior entry produced by
// the *same tool configuration on the same host*, whatever commit wrote
// it. That turns the single-baseline kernel gate into a trajectory: every
// `make check` appends a point, and regressions are caught against the
// most recent healthy state instead of a hand-regenerated file.
package results

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Row is one named measurement inside an Entry: a kernel timing from
// kbench or a campaign cell / experiment wall time from mdsweep. NsPerOp
// is the host-measured wall time; Flops/Bytes/AI are the modeled
// arithmetic cost when the tool prices one (zero otherwise, which the
// comparison treats as "not checked").
type Row struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers,omitempty"`
	NsPerOp int64   `json:"ns_per_op"`
	Flops   float64 `json:"flops,omitempty"`
	Bytes   float64 `json:"bytes,omitempty"`
	AI      float64 `json:"arithmetic_intensity,omitempty"`
}

// Entry is one trajectory point: a complete report from one tool run.
type Entry struct {
	Time       time.Time `json:"time"`
	Tool       string    `json:"tool"`
	GitSHA     string    `json:"git_sha"`
	Host       string    `json:"host"`
	ConfigHash string    `json:"config_hash"`
	Atoms      int       `json:"atoms,omitempty"`
	Rows       []Row     `json:"rows"`
}

// Key identifies comparable entries: same tool, same host, same
// generating configuration, same system size. The git SHA is excluded on
// purpose (see the package comment).
type Key struct {
	Tool       string
	Host       string
	ConfigHash string
	Atoms      int
}

// Key returns the entry's match key.
func (e Entry) Key() Key {
	return Key{Tool: e.Tool, Host: e.Host, ConfigHash: e.ConfigHash, Atoms: e.Atoms}
}

// Fingerprint identifies the measuring host: platform, core count, Go
// toolchain, and hostname. Wall times are only comparable between entries
// with equal fingerprints.
func Fingerprint() string {
	host, _ := os.Hostname() // best effort; empty on error
	return fmt.Sprintf("%s/%s cpu=%d %s host=%s",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version(), host)
}

// ConfigHash hashes the generating configuration (flags, grids, fidelity
// caps) into a short stable token: two entries compare only when the
// sweep that produced them was identical. v must JSON-encode
// deterministically (struct or flat map).
func ConfigHash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Config structs are plain data; an unencodable one is a bug.
		panic(fmt.Sprintf("results: config hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// GitSHA resolves the repository HEAD for dir, or "unknown" when git is
// unavailable (results stay usable outside a checkout).
func GitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short=12", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Store is an append-only JSONL trajectory file. The zero value is not
// usable; call Open.
type Store struct {
	Path string
}

// Open returns a store over path. The file need not exist yet; the first
// Append creates it (and its directory).
func Open(path string) *Store { return &Store{Path: path} }

// Append adds one entry to the end of the store. The write is a single
// buffered line flushed and synced before close, and errors from every
// stage are returned — a full disk cannot silently truncate the
// trajectory.
func (s *Store) Append(e Entry) error {
	if dir := filepath.Dir(s.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("results: %w", err)
		}
	}
	f, err := os.OpenFile(s.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	line, err := json.Marshal(e)
	if err != nil {
		f.Close()
		return fmt.Errorf("results: encode entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("results: append %s: %w", s.Path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("results: sync %s: %w", s.Path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("results: close %s: %w", s.Path, err)
	}
	return nil
}

// Entries reads the whole trajectory in append order. A missing file is
// an empty trajectory, not an error; a malformed line is an error with
// its line number (the store is append-only, so damage means the file
// was edited or torn mid-write).
func (s *Store) Entries() ([]Entry, error) {
	f, err := os.Open(s.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // campaign entries carry many rows
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("results: %s:%d: %w", s.Path, n, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: %s: %w", s.Path, err)
	}
	return out, nil
}

// Match filters entries to those with the given key, preserving append
// order (oldest first).
func Match(entries []Entry, k Key) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Key() == k {
			out = append(out, e)
		}
	}
	return out
}

// Baseline returns the newest stored entry comparable to cur, or nil
// when the trajectory holds none (first run on this host/config).
func (s *Store) Baseline(cur Entry) (*Entry, error) {
	entries, err := s.Entries()
	if err != nil {
		return nil, err
	}
	m := Match(entries, cur.Key())
	if len(m) == 0 {
		return nil, nil
	}
	return &m[len(m)-1], nil
}
