package results

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func entry(tool, host, cfg string, atoms int, rows ...Row) Entry {
	return Entry{
		Time: time.Unix(0, 0).UTC(), Tool: tool, GitSHA: "abc",
		Host: host, ConfigHash: cfg, Atoms: atoms, Rows: rows,
	}
}

// TestStoreRoundTrip: append-then-read preserves entries and order, and
// a missing file reads as an empty trajectory.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "trajectory.jsonl")
	s := Open(path)
	if got, err := s.Entries(); err != nil || got != nil {
		t.Fatalf("missing file: entries=%v err=%v, want nil,nil", got, err)
	}
	e1 := entry("kbench", "h1", "c1", 8000, Row{Name: "pair_lj", Workers: 1, NsPerOp: 100, AI: 0.5})
	e2 := entry("kbench", "h1", "c1", 8000, Row{Name: "pair_lj", Workers: 1, NsPerOp: 110, AI: 0.5})
	if err := s.Append(e1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(e2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2", len(got))
	}
	if got[0].Rows[0].NsPerOp != 100 || got[1].Rows[0].NsPerOp != 110 {
		t.Errorf("append order not preserved: %+v", got)
	}
	if got[0].Key() != e1.Key() {
		t.Errorf("key round-trip: got %+v want %+v", got[0].Key(), e1.Key())
	}
}

// TestStoreMalformedLine: a damaged line is an error naming the line.
func TestStoreMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trajectory.jsonl")
	if err := os.WriteFile(path, []byte("{\"tool\":\"kbench\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path).Entries()
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("want line-2 parse error, got %v", err)
	}
}

// TestBaseline: newest matching entry wins; non-matching keys (other
// host, other config, other tool, other atoms) are invisible.
func TestBaseline(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "t.jsonl"))
	for _, e := range []Entry{
		entry("kbench", "h1", "c1", 8000, Row{Name: "a", NsPerOp: 1}),
		entry("kbench", "h2", "c1", 8000, Row{Name: "a", NsPerOp: 2}),
		entry("kbench", "h1", "c2", 8000, Row{Name: "a", NsPerOp: 3}),
		entry("mdsweep", "h1", "c1", 8000, Row{Name: "a", NsPerOp: 4}),
		entry("kbench", "h1", "c1", 4000, Row{Name: "a", NsPerOp: 5}),
		entry("kbench", "h1", "c1", 8000, Row{Name: "a", NsPerOp: 6}),
	} {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	cur := entry("kbench", "h1", "c1", 8000, Row{Name: "a", NsPerOp: 7})
	base, err := s.Baseline(cur)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || base.Rows[0].NsPerOp != 6 {
		t.Fatalf("baseline = %+v, want the newest h1/c1/8000 kbench entry (ns 6)", base)
	}
	other := entry("kbench", "h3", "c1", 8000)
	if base, err := s.Baseline(other); err != nil || base != nil {
		t.Errorf("unmatched key: baseline=%v err=%v, want nil,nil", base, err)
	}
}

// TestConfigHashStability: equal configs hash equal, different ones
// differ, and the token is short hex.
func TestConfigHashStability(t *testing.T) {
	type cfg struct {
		Atoms int      `json:"atoms"`
		Grid  []string `json:"grid"`
	}
	a := ConfigHash(cfg{8000, []string{"lj", "eam"}})
	b := ConfigHash(cfg{8000, []string{"lj", "eam"}})
	c := ConfigHash(cfg{8000, []string{"lj"}})
	if a != b {
		t.Errorf("equal configs hash %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different configs collide: %q", a)
	}
	if len(a) != 12 {
		t.Errorf("hash length = %d, want 12", len(a))
	}
}

// TestKernelReportEntry: report -> entry conversion keeps rows, host
// identity, and produces a config hash tied to atoms.
func TestKernelReportEntry(t *testing.T) {
	rep := &KernelReport{
		Atoms: 8000, Workloads: []string{"lj"}, Host: "h1",
		Kernels: []KernelRow{{Kernel: "pair_lj", Workers: 4, NsPerOp: 42, Flops: 10, Bytes: 20, AI: 0.5}},
	}
	e := rep.Entry("kbench", "sha")
	if e.Host != "h1" || e.Atoms != 8000 || e.Tool != "kbench" || e.GitSHA != "sha" {
		t.Errorf("entry identity wrong: %+v", e)
	}
	if len(e.Rows) != 1 || e.Rows[0] != (Row{Name: "pair_lj", Workers: 4, NsPerOp: 42, Flops: 10, Bytes: 20, AI: 0.5}) {
		t.Errorf("rows wrong: %+v", e.Rows)
	}
	rep2 := &KernelReport{Atoms: 4000, Workloads: []string{"lj"}, Host: "h1"}
	if rep2.Entry("kbench", "sha").ConfigHash == e.ConfigHash {
		t.Error("different atom counts must hash to different configs")
	}
	// Older reports without a Host field synthesize one from platform
	// fields instead of matching entries from any host.
	old := &KernelReport{Atoms: 8000, GOOS: "linux", GOARCH: "amd64", NumCPU: 2, GoVersion: "go1.22"}
	if old.Entry("kbench", "sha").Host == "" {
		t.Error("host fallback empty")
	}
}

// TestWriteReadKernelReport: disk round-trip.
func TestWriteReadKernelReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	rep := &KernelReport{Atoms: 123, Host: "h", Kernels: []KernelRow{{Kernel: "pppm", NsPerOp: 7}}}
	if err := WriteKernelReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Atoms != 123 || len(got.Kernels) != 1 || got.Kernels[0].Kernel != "pppm" {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

func rows(rs ...Row) Entry { return entry("kbench", "h", "c", 8000, rs...) }

// TestCompare: table-driven over the gate's decision surface.
func TestCompare(t *testing.T) {
	tol := Tolerances{AITol: 0.25, MaxSlowdown: 25}
	cases := []struct {
		name      string
		base, cur Entry
		wantFails int
		wantIn    string // substring expected in some failure
	}{
		{
			name:      "identical passes",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			wantFails: 0,
		},
		{
			name:      "missing from current",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}, Row{Name: "b", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			wantFails: 1,
			wantIn:    "missing from current",
		},
		{
			name:      "missing from baseline",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}, Row{Name: "new", Workers: 1, NsPerOp: 100, AI: 1.0}),
			wantFails: 1,
			wantIn:    "regenerate the baseline",
		},
		{
			name:      "same kernel different workers is a different row",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 4, NsPerOp: 100, AI: 1.0}),
			wantFails: 2, // workers=1 missing from current, workers=4 missing from baseline
		},
		{
			name:      "zero baseline ns skips the slowdown bar",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 0, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 1 << 40, AI: 1.0}),
			wantFails: 0,
		},
		{
			name:      "zero baseline AI skips the drift bar",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 99}),
			wantFails: 0,
		},
		{
			name:      "zero current AI against nonzero baseline fails drift",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 0}),
			wantFails: 1,
			wantIn:    "arithmetic intensity drifted",
		},
		{
			name:      "AI drift just inside tolerance passes",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.24}),
			wantFails: 0,
		},
		{
			name:      "AI drift just outside tolerance fails",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.26}),
			wantFails: 1,
			wantIn:    "arithmetic intensity drifted",
		},
		{
			name:      "slowdown just inside the ceiling passes",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 2500, AI: 1.0}),
			wantFails: 0,
		},
		{
			name:      "slowdown beyond the ceiling fails",
			base:      rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0}),
			cur:       rows(Row{Name: "a", Workers: 1, NsPerOp: 2600, AI: 1.0}),
			wantFails: 1,
			wantIn:    "slower than baseline",
		},
		{
			name:      "atom-count mismatch short-circuits",
			base:      entry("kbench", "h", "c", 8000, Row{Name: "a", NsPerOp: 100}),
			cur:       entry("kbench", "h", "c", 4000, Row{Name: "b", NsPerOp: 100}),
			wantFails: 1,
			wantIn:    "matching -atoms",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fails := Compare(c.base, c.cur, tol)
			if len(fails) != c.wantFails {
				t.Fatalf("failures = %d (%v), want %d", len(fails), fails, c.wantFails)
			}
			if c.wantIn != "" {
				found := false
				for _, f := range fails {
					if strings.Contains(f.String(), c.wantIn) {
						found = true
					}
				}
				if !found {
					t.Errorf("no failure contains %q: %v", c.wantIn, fails)
				}
			}
		})
	}
}

// TestCompareDefaultTolerances: zero tolerances adopt 25% / 25x.
func TestCompareDefaultTolerances(t *testing.T) {
	base := rows(Row{Name: "a", Workers: 1, NsPerOp: 100, AI: 1.0})
	cur := rows(Row{Name: "a", Workers: 1, NsPerOp: 2400, AI: 1.2})
	if fails := Compare(base, cur, Tolerances{}); len(fails) != 0 {
		t.Errorf("defaults should allow 24x and 20%% drift: %v", fails)
	}
	cur = rows(Row{Name: "a", Workers: 1, NsPerOp: 2600, AI: 1.3})
	if fails := Compare(base, cur, Tolerances{}); len(fails) != 2 {
		t.Errorf("defaults should reject 26x and 30%% drift: %v", fails)
	}
}
