// Package rng implements the deterministic pseudo-random number generation
// used by gomd. All stochastic pieces of the engine (velocity
// initialization, Langevin thermostats, workload builders) draw from this
// package so that runs are exactly reproducible from a seed, including
// across domain decompositions (each rank derives an independent stream).
package rng

import "math"

// Source is a xoshiro256** generator seeded through splitmix64, following
// Blackman & Vigna. It is small, fast, and has no stdlib dependencies
// beyond math, which keeps the hot thermostat paths allocation-free.
type Source struct {
	s [4]uint64
	// cached second gaussian from the Box-Muller pair
	gauss    float64
	hasGauss bool
}

// splitmix64 advances x and returns a well-mixed 64-bit value. It is used
// only for seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed reinitializes the generator state from seed.
func (s *Source) Reseed(seed uint64) {
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	s.hasGauss = false
}

// Stream returns a new Source with a stream id mixed into the seed; ranks
// use this to obtain decorrelated generators from a common run seed.
func (s *Source) Stream(id uint64) *Source {
	return New(s.Uint64() ^ (id+1)*0xd1342543de82ef95)
}

// State is the complete serializable generator state: the xoshiro256**
// words plus the Box-Muller cache. Checkpoints carry it so a restored
// stream continues bit-exactly where the interrupted one stopped —
// including a pending second gaussian.
type State struct {
	S        [4]uint64
	Gauss    float64
	HasGauss bool
}

// State captures the generator state.
func (s *Source) State() State {
	return State{S: s.s, Gauss: s.gauss, HasGauss: s.hasGauss}
}

// SetState restores a previously captured state.
func (s *Source) SetState(st State) {
	s.s = st.S
	s.gauss = st.Gauss
	s.hasGauss = st.HasGauss
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	r := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return r
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0, n). n must be positive.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Gaussian returns a standard normal variate via the Box-Muller transform.
func (s *Source) Gaussian() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.gauss = r * math.Sin(2*math.Pi*v)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*v)
}
