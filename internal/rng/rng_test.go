package rng_test

import (
	"math"
	"testing"

	"gomd/internal/rng"
)

func TestDeterminism(t *testing.T) {
	a := rng.New(12345)
	b := rng.New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := rng.New(12346)
	same := 0
	a.Reseed(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d matching draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := rng.New(99)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance %v", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := rng.New(4242)
	n := 200000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := r.Gaussian()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	skew := sum3 / float64(n)
	kurt := sum4 / float64(n)
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance %v", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("gaussian skewness %v", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("gaussian kurtosis %v", kurt)
	}
}

func TestIntnBounds(t *testing.T) {
	r := rng.New(3)
	seen := map[int]int{}
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for face, count := range seen {
		if count < 9000 || count > 11000 {
			t.Errorf("face %d count %d far from uniform", face, count)
		}
	}
}

func TestRange(t *testing.T) {
	r := rng.New(8)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestStreamsDecorrelated(t *testing.T) {
	base := rng.New(1)
	s1 := base.Stream(1)
	s2 := base.Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams correlated: %d matches", same)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	rng.New(1).Intn(0)
}
