// Package script interprets a LAMMPS-style input script — the lingua
// franca the paper's benchmark inputs are written in — and drives the
// gomd engine with it. The supported command subset covers the five
// bench inputs: units, lattice, region, create_box/create_atoms, mass,
// velocity create, pair_style/pair_coeff, neighbor/neigh_modify,
// kspace_style, fix, timestep, thermo, run, and log/print.
//
// Scripts are line-oriented: `#` starts a comment, `&` at end of line
// continues onto the next, tokens are whitespace-separated.
package script

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"gomd/internal/atom"
	"gomd/internal/bond"
	"gomd/internal/box"
	"gomd/internal/core"
	"gomd/internal/dump"
	"gomd/internal/fix"
	"gomd/internal/kspace"
	"gomd/internal/lattice"
	"gomd/internal/pair"
	"gomd/internal/rng"
	"gomd/internal/units"
	"gomd/internal/vec"
)

// Interp holds the accumulating state of one script execution.
type Interp struct {
	// Out receives thermo and print output (defaults to io.Discard).
	Out io.Writer

	units   units.System
	hasUnit bool

	latStyle lattice.Style
	latA     float64 // lattice constant
	hasLat   bool

	// region "block" bounds in lattice units.
	regions map[string][2]vec.V3

	bx       box.Box
	hasBox   bool
	ntypes   int
	masses   []float64
	st       *atom.Store
	pairSty  pair.Style
	coeffSet bool
	skin     float64
	every    int
	delay    int
	noCheck  bool
	kspaceS  kspace.Solver
	bondSty  []bond.Style
	fixes    []fix.Fix
	dt       float64
	thermoN  int

	sim *Simulation

	// dump settings: format ("xyz" or "custom"), interval, path.
	dumpEvery  int
	dumpFormat string
	dumpPath   string

	line int
}

// Simulation wraps the constructed core.Simulation once the first `run`
// executes.
type Simulation = core.Simulation

// New returns an empty interpreter.
func New(out io.Writer) *Interp {
	if out == nil {
		out = io.Discard
	}
	return &Interp{
		Out:     out,
		regions: map[string][2]vec.V3{},
		skin:    0.3,
		every:   1,
	}
}

// Sim exposes the running simulation (nil before the first `run`).
func (in *Interp) Sim() *core.Simulation { return in.sim }

// Run executes a whole script.
func (in *Interp) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cont strings.Builder
	for sc.Scan() {
		in.line++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "&") {
			cont.WriteString(strings.TrimSuffix(line, "&"))
			cont.WriteByte(' ')
			continue
		}
		if cont.Len() > 0 {
			line = cont.String() + line
			cont.Reset()
		}
		if line == "" {
			continue
		}
		if err := in.exec(strings.Fields(line)); err != nil {
			return fmt.Errorf("line %d: %w", in.line, err)
		}
	}
	return sc.Err()
}

func (in *Interp) exec(tok []string) error {
	switch tok[0] {
	case "units":
		return in.cmdUnits(tok[1:])
	case "atom_style":
		return nil // atomic/granular storage is uniform here
	case "lattice":
		return in.cmdLattice(tok[1:])
	case "region":
		return in.cmdRegion(tok[1:])
	case "create_box":
		return in.cmdCreateBox(tok[1:])
	case "create_atoms":
		return in.cmdCreateAtoms(tok[1:])
	case "mass":
		return in.cmdMass(tok[1:])
	case "velocity":
		return in.cmdVelocity(tok[1:])
	case "pair_style":
		return in.cmdPairStyle(tok[1:])
	case "pair_coeff":
		return in.cmdPairCoeff(tok[1:])
	case "neighbor":
		return in.cmdNeighbor(tok[1:])
	case "neigh_modify":
		return in.cmdNeighModify(tok[1:])
	case "kspace_style":
		return in.cmdKspace(tok[1:])
	case "bond_style", "angle_style", "dihedral_style":
		return in.cmdBondStyle(tok[0], tok[1:])
	case "bond_coeff", "angle_coeff", "dihedral_coeff":
		return in.cmdBondCoeff(tok[0], tok[1:])
	case "fix":
		return in.cmdFix(tok[1:])
	case "timestep":
		return in.one(tok[1:], &in.dt)
	case "thermo":
		n, err := atoi(tok[1])
		in.thermoN = n
		return err
	case "print":
		fmt.Fprintln(in.Out, strings.Join(tok[1:], " "))
		return nil
	case "log", "echo", "boundary", "atom_modify", "comm_modify", "pair_modify":
		return nil // accepted for input compatibility; defaults apply
	case "read_data":
		return in.cmdReadData(tok[1:])
	case "write_data":
		return in.cmdWriteData(tok[1:])
	case "dump":
		return in.cmdDump(tok[1:])
	case "write_restart":
		return in.cmdWriteRestart(tok[1:])
	case "run":
		return in.cmdRun(tok[1:])
	default:
		return fmt.Errorf("unknown command %q", tok[0])
	}
}

func (in *Interp) cmdUnits(a []string) error {
	if len(a) != 1 {
		return fmt.Errorf("units takes one style")
	}
	switch a[0] {
	case "lj":
		in.units = units.ForStyle(units.LJ)
	case "metal":
		in.units = units.ForStyle(units.Metal)
	case "real":
		in.units = units.ForStyle(units.Real)
	default:
		return fmt.Errorf("unsupported units %q", a[0])
	}
	in.hasUnit = true
	in.dt = in.units.DefaultDt
	return nil
}

func (in *Interp) cmdLattice(a []string) error {
	if len(a) < 2 {
		return fmt.Errorf("lattice needs style and scale")
	}
	switch a[0] {
	case "fcc":
		in.latStyle = lattice.FCC
	case "bcc":
		in.latStyle = lattice.BCC
	case "sc":
		in.latStyle = lattice.SC
	default:
		return fmt.Errorf("unsupported lattice %q", a[0])
	}
	v, err := atof(a[1])
	if err != nil {
		return err
	}
	if in.units.Style == units.LJ {
		// LJ units: the scale is a reduced density.
		in.latA = lattice.CubicForDensity(in.latStyle, v)
	} else {
		// Otherwise it is the lattice constant.
		in.latA = v
	}
	in.hasLat = true
	return nil
}

func (in *Interp) cmdRegion(a []string) error {
	// region <id> block xlo xhi ylo yhi zlo zhi
	if len(a) < 8 || a[1] != "block" {
		return fmt.Errorf("only `region <id> block xlo xhi ylo yhi zlo zhi` is supported")
	}
	var b [6]float64
	for i := 0; i < 6; i++ {
		v, err := atof(a[2+i])
		if err != nil {
			return err
		}
		b[i] = v
	}
	in.regions[a[0]] = [2]vec.V3{
		vec.New(b[0], b[2], b[4]),
		vec.New(b[1], b[3], b[5]),
	}
	return nil
}

func (in *Interp) cmdCreateBox(a []string) error {
	if len(a) != 2 {
		return fmt.Errorf("create_box <ntypes> <region>")
	}
	n, err := atoi(a[0])
	if err != nil {
		return err
	}
	r, ok := in.regions[a[1]]
	if !ok {
		return fmt.Errorf("unknown region %q", a[1])
	}
	if !in.hasLat {
		return fmt.Errorf("create_box before lattice")
	}
	in.ntypes = n
	in.masses = make([]float64, n)
	for i := range in.masses {
		in.masses[i] = 1
	}
	lo := r[0].Scale(in.latA)
	hi := r[1].Scale(in.latA)
	in.bx = box.NewPeriodic(lo, hi)
	in.hasBox = true
	in.st = atom.New(1024)
	return nil
}

func (in *Interp) cmdCreateAtoms(a []string) error {
	if len(a) < 2 {
		return fmt.Errorf("create_atoms <type> box|region <id>")
	}
	if !in.hasBox {
		return fmt.Errorf("create_atoms before create_box")
	}
	typ, err := atoi(a[0])
	if err != nil {
		return err
	}
	lo, hi := in.bx.Lo, in.bx.Hi
	if a[1] == "region" {
		if len(a) < 3 {
			return fmt.Errorf("create_atoms region needs an id")
		}
		r, ok := in.regions[a[2]]
		if !ok {
			return fmt.Errorf("unknown region %q", a[2])
		}
		lo, hi = r[0].Scale(in.latA), r[1].Scale(in.latA)
	}
	nx := int(math.Round((hi.X - lo.X) / in.latA))
	ny := int(math.Round((hi.Y - lo.Y) / in.latA))
	nz := int(math.Round((hi.Z - lo.Z) / in.latA))
	pos := lattice.Generate(in.latStyle, in.latA, nx, ny, nz, lo)
	tag := int64(in.st.N)
	for _, p := range pos {
		tag++
		in.st.Add(atom.Atom{Tag: tag, Type: int32(typ), Pos: p})
	}
	fmt.Fprintf(in.Out, "Created %d atoms\n", len(pos))
	return nil
}

func (in *Interp) cmdMass(a []string) error {
	if len(a) != 2 {
		return fmt.Errorf("mass <type> <m>")
	}
	t, err := atoi(a[0])
	if err != nil {
		return err
	}
	m, err := atof(a[1])
	if err != nil {
		return err
	}
	if t < 1 || t > in.ntypes {
		return fmt.Errorf("type %d out of range", t)
	}
	in.masses[t-1] = m
	return nil
}

func (in *Interp) cmdVelocity(a []string) error {
	// velocity all create <T> <seed>
	if len(a) < 4 || a[0] != "all" || a[1] != "create" {
		return fmt.Errorf("only `velocity all create <T> <seed>` is supported")
	}
	T, err := atof(a[2])
	if err != nil {
		return err
	}
	seed, err := atoi(a[3])
	if err != nil {
		return err
	}
	masses := make([]float64, in.st.N)
	for i := 0; i < in.st.N; i++ {
		masses[i] = in.masses[in.st.Type[i]-1]
	}
	vel := lattice.MaxwellVelocities(rng.New(uint64(seed)), masses, T, in.units.Boltz, in.units.MVV2E)
	copy(in.st.Vel, vel)
	return nil
}

func (in *Interp) cmdPairStyle(a []string) error {
	if len(a) < 1 {
		return fmt.Errorf("pair_style needs a style")
	}
	switch a[0] {
	case "lj/cut":
		if len(a) < 2 {
			return fmt.Errorf("lj/cut needs a cutoff")
		}
		rc, err := atof(a[1])
		if err != nil {
			return err
		}
		p := pair.NewLJCut(1, 1, rc, pair.Double)
		p.Eps = make([][]float64, in.ntypes)
		p.Sigma = make([][]float64, in.ntypes)
		for i := range p.Eps {
			p.Eps[i] = make([]float64, in.ntypes)
			p.Sigma[i] = make([]float64, in.ntypes)
		}
		in.pairSty = p
	case "lj/charmm/coul/long":
		if len(a) < 3 {
			return fmt.Errorf("lj/charmm/coul/long needs inner and outer cutoffs")
		}
		inner, err := atof(a[1])
		if err != nil {
			return err
		}
		outer, err := atof(a[2])
		if err != nil {
			return err
		}
		eps := make([]float64, in.ntypes)
		sig := make([]float64, in.ntypes)
		in.pairSty = pair.NewCharmm(eps, sig, inner, outer, pair.Double)
	case "morse":
		if len(a) < 2 {
			return fmt.Errorf("morse needs a cutoff")
		}
		rc, err := atof(a[1])
		if err != nil {
			return err
		}
		in.pairSty = &pair.Morse{RCut: rc, Prec: pair.Double}
	case "eam":
		in.pairSty = pair.NewEAMCopper(pair.Double)
		in.coeffSet = true
	case "gran/hooke/history":
		in.pairSty = pair.NewGranChute()
		in.coeffSet = true
	default:
		return fmt.Errorf("unsupported pair_style %q", a[0])
	}
	return nil
}

func (in *Interp) cmdPairCoeff(a []string) error {
	// pair_coeff <i> <j> <eps> <sigma>  (or `* *` for all)
	if in.pairSty == nil {
		return fmt.Errorf("pair_coeff before pair_style")
	}
	switch p := in.pairSty.(type) {
	case *pair.Morse:
		// pair_coeff * * D0 alpha r0
		if len(a) < 5 {
			return fmt.Errorf("pair_coeff * * D0 alpha r0")
		}
		var err error
		if p.D0, err = atof(a[2]); err != nil {
			return err
		}
		if p.Alpha, err = atof(a[3]); err != nil {
			return err
		}
		if p.R0, err = atof(a[4]); err != nil {
			return err
		}
		in.coeffSet = true
	case *pair.LJCut:
		if len(a) < 4 {
			return fmt.Errorf("pair_coeff i j eps sigma")
		}
		eps, err := atof(a[2])
		if err != nil {
			return err
		}
		sig, err := atof(a[3])
		if err != nil {
			return err
		}
		apply := func(i, j int) {
			p.Eps[i][j], p.Eps[j][i] = eps, eps
			p.Sigma[i][j], p.Sigma[j][i] = sig, sig
		}
		if a[0] == "*" {
			for i := 0; i < in.ntypes; i++ {
				for j := i; j < in.ntypes; j++ {
					apply(i, j)
				}
			}
		} else {
			i, err := atoi(a[0])
			if err != nil {
				return err
			}
			j, err := atoi(a[1])
			if err != nil {
				return err
			}
			apply(i-1, j-1)
		}
		in.coeffSet = true
	case *pair.CharmmCoulLong:
		if len(a) < 4 {
			return fmt.Errorf("pair_coeff i j eps sigma")
		}
		eps, err := atof(a[2])
		if err != nil {
			return err
		}
		sig, err := atof(a[3])
		if err != nil {
			return err
		}
		i, err := atoi(a[0])
		if err != nil {
			return err
		}
		p.Eps[i-1][i-1] = eps
		p.Sigma[i-1][i-1] = sig
		// Re-mix arithmetically.
		for x := 0; x < in.ntypes; x++ {
			for y := 0; y < in.ntypes; y++ {
				p.Eps[x][y] = math.Sqrt(p.Eps[x][x] * p.Eps[y][y])
				p.Sigma[x][y] = 0.5 * (p.Sigma[x][x] + p.Sigma[y][y])
			}
		}
		in.coeffSet = true
	default:
		// eam / granular take no coefficients here.
	}
	return nil
}

func (in *Interp) cmdNeighbor(a []string) error {
	if len(a) < 1 {
		return fmt.Errorf("neighbor <skin> [bin]")
	}
	return in.one(a[:1], &in.skin)
}

func (in *Interp) cmdNeighModify(a []string) error {
	for i := 0; i+1 < len(a); i += 2 {
		switch a[i] {
		case "every":
			n, err := atoi(a[i+1])
			if err != nil {
				return err
			}
			in.every = n
		case "delay":
			n, err := atoi(a[i+1])
			if err != nil {
				return err
			}
			in.delay = n
		case "check":
			in.noCheck = a[i+1] == "no"
		}
	}
	return nil
}

func (in *Interp) cmdKspace(a []string) error {
	if len(a) < 2 || a[0] != "pppm" && a[0] != "ewald" {
		return fmt.Errorf("kspace_style pppm|ewald <accuracy>")
	}
	acc, err := atof(a[1])
	if err != nil {
		return err
	}
	rc := 10.0
	if ch, ok := in.pairSty.(*pair.CharmmCoulLong); ok {
		rc = ch.RCoul
	}
	if a[0] == "pppm" {
		in.kspaceS = kspace.NewPPPM(acc, rc)
	} else {
		in.kspaceS = kspace.NewEwald(acc, rc)
	}
	return nil
}

// cmdBondStyle registers a bonded style; coefficients follow via the
// matching *_coeff command.
func (in *Interp) cmdBondStyle(cmd string, a []string) error {
	if len(a) < 1 {
		return fmt.Errorf("%s needs a style", cmd)
	}
	switch cmd + " " + a[0] {
	case "bond_style fene":
		in.bondSty = append(in.bondSty, bond.NewFENEChain())
	case "bond_style harmonic":
		in.bondSty = append(in.bondSty, &bond.Harmonic{})
	case "angle_style harmonic":
		in.bondSty = append(in.bondSty, &bond.HarmonicAngle{})
	case "dihedral_style charmm", "dihedral_style harmonic":
		in.bondSty = append(in.bondSty, &bond.DihedralHarmonic{N: 1})
	default:
		return fmt.Errorf("unsupported %s %q", cmd, a[0])
	}
	return nil
}

// cmdBondCoeff sets coefficients on the most recent style of its class.
func (in *Interp) cmdBondCoeff(cmd string, a []string) error {
	find := func(match func(bond.Style) bool) bond.Style {
		for i := len(in.bondSty) - 1; i >= 0; i-- {
			if match(in.bondSty[i]) {
				return in.bondSty[i]
			}
		}
		return nil
	}
	switch cmd {
	case "bond_coeff":
		st := find(func(s bond.Style) bool {
			switch s.(type) {
			case *bond.FENE, *bond.Harmonic:
				return true
			}
			return false
		})
		switch b := st.(type) {
		case *bond.FENE:
			// bond_coeff <t> K R0 eps sigma
			if len(a) < 5 {
				return fmt.Errorf("bond_coeff <t> K R0 eps sigma for fene")
			}
			var err error
			if b.K, err = atof(a[1]); err != nil {
				return err
			}
			if b.R0, err = atof(a[2]); err != nil {
				return err
			}
			if b.Eps, err = atof(a[3]); err != nil {
				return err
			}
			if b.Sigma, err = atof(a[4]); err != nil {
				return err
			}
		case *bond.Harmonic:
			if len(a) < 3 {
				return fmt.Errorf("bond_coeff <t> K r0")
			}
			var err error
			if b.K, err = atof(a[1]); err != nil {
				return err
			}
			if b.R0, err = atof(a[2]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bond_coeff before bond_style")
		}
	case "angle_coeff":
		st := find(func(s bond.Style) bool { _, ok := s.(*bond.HarmonicAngle); return ok })
		ang, _ := st.(*bond.HarmonicAngle)
		if ang == nil {
			return fmt.Errorf("angle_coeff before angle_style")
		}
		if len(a) < 3 {
			return fmt.Errorf("angle_coeff <t> K theta0(deg)")
		}
		var err error
		if ang.K, err = atof(a[1]); err != nil {
			return err
		}
		deg, err := atof(a[2])
		if err != nil {
			return err
		}
		ang.Theta0 = deg * math.Pi / 180
	case "dihedral_coeff":
		st := find(func(s bond.Style) bool { _, ok := s.(*bond.DihedralHarmonic); return ok })
		dh, _ := st.(*bond.DihedralHarmonic)
		if dh == nil {
			return fmt.Errorf("dihedral_coeff before dihedral_style")
		}
		if len(a) < 4 {
			return fmt.Errorf("dihedral_coeff <t> K n d(deg)")
		}
		var err error
		if dh.K, err = atof(a[1]); err != nil {
			return err
		}
		n, err := atoi(a[2])
		if err != nil {
			return err
		}
		dh.N = n
		deg, err := atof(a[3])
		if err != nil {
			return err
		}
		dh.D = deg * math.Pi / 180
	}
	return nil
}

func (in *Interp) cmdFix(a []string) error {
	// fix <id> all <style> [args]
	if len(a) < 3 {
		return fmt.Errorf("fix <id> <group> <style> ...")
	}
	style := a[2]
	args := a[3:]
	switch style {
	case "nve":
		in.fixes = append(in.fixes, &fix.NVE{})
	case "nve/limit":
		if len(args) < 1 {
			return fmt.Errorf("nve/limit needs a max displacement")
		}
		v, err := atof(args[0])
		if err != nil {
			return err
		}
		in.fixes = append(in.fixes, &fix.NVELimit{MaxDisp: v})
	case "langevin":
		if len(args) < 3 {
			return fmt.Errorf("langevin <Tstart> <Tstop> <damp>")
		}
		T, err := atof(args[0])
		if err != nil {
			return err
		}
		damp, err := atof(args[2])
		if err != nil {
			return err
		}
		in.fixes = append(in.fixes, &fix.Langevin{T: T, Damp: damp})
	case "nvt":
		// fix 1 all nvt temp T T tdamp
		if len(args) < 4 || args[0] != "temp" {
			return fmt.Errorf("nvt temp <Tstart> <Tstop> <damp>")
		}
		f := &fix.NVT{}
		var err error
		if f.TStart, err = atof(args[1]); err != nil {
			return err
		}
		if f.TStop, err = atof(args[2]); err != nil {
			return err
		}
		if f.TDamp, err = atof(args[3]); err != nil {
			return err
		}
		in.fixes = append(in.fixes, f)
	case "npt":
		// fix 1 all npt temp T T tdamp iso P P pdamp
		f := &fix.NPT{}
		for i := 0; i < len(args); i++ {
			switch args[i] {
			case "temp":
				if i+3 >= len(args) {
					return fmt.Errorf("npt temp needs 3 values")
				}
				var err error
				if f.TStart, err = atof(args[i+1]); err != nil {
					return err
				}
				if f.TStop, err = atof(args[i+2]); err != nil {
					return err
				}
				if f.TDamp, err = atof(args[i+3]); err != nil {
					return err
				}
				i += 3
			case "iso":
				if i+3 >= len(args) {
					return fmt.Errorf("npt iso needs 3 values")
				}
				var err error
				if f.PTarget, err = atof(args[i+1]); err != nil {
					return err
				}
				if f.PDamp, err = atof(args[i+3]); err != nil {
					return err
				}
				i += 3
			}
		}
		in.fixes = append(in.fixes, f)
	case "gravity":
		// fix g all gravity <mag> chute <angle>
		if len(args) < 3 || args[1] != "chute" {
			return fmt.Errorf("gravity <mag> chute <angle>")
		}
		mag, err := atof(args[0])
		if err != nil {
			return err
		}
		ang, err := atof(args[2])
		if err != nil {
			return err
		}
		in.fixes = append(in.fixes, &fix.Gravity{Mag: mag, Angle: ang})
	case "wall/gran":
		in.fixes = append(in.fixes, fix.NewWallGranChute())
	default:
		return fmt.Errorf("unsupported fix style %q", style)
	}
	return nil
}

func (in *Interp) cmdRun(a []string) error {
	if len(a) != 1 {
		return fmt.Errorf("run <steps>")
	}
	n, err := atoi(a[0])
	if err != nil {
		return err
	}
	if in.sim == nil {
		if err := in.finalize(); err != nil {
			return err
		}
	}
	if in.dumpEvery > 0 {
		for done := 0; done < n; {
			chunk := in.dumpEvery
			if done+chunk > n {
				chunk = n - done
			}
			in.sim.Run(chunk)
			done += chunk
			if err := in.writeDumpFrames(); err != nil {
				return err
			}
		}
	} else {
		in.sim.Run(n)
	}
	th := in.sim.ComputeThermo()
	fmt.Fprintf(in.Out, "run complete: step %d T %.4f PE %.6g E %.6g\n",
		th.Step, th.Temperature, th.PotEnergy, th.TotalEnergy)
	return nil
}

// cmdReadData loads a LAMMPS data file: box, masses, atoms, topology.
func (in *Interp) cmdReadData(a []string) error {
	if len(a) != 1 {
		return fmt.Errorf("read_data <file>")
	}
	f, err := os.Open(a[0])
	if err != nil {
		return err
	}
	defer f.Close()
	df, err := dump.ReadData(f)
	if err != nil {
		return err
	}
	in.bx = df.Box
	in.hasBox = true
	in.masses = df.Masses
	in.ntypes = len(df.Masses)
	in.st = df.Store()
	fmt.Fprintf(in.Out, "Read %d atoms\n", in.st.N)
	return nil
}

// cmdWriteData saves the current system as a data file.
func (in *Interp) cmdWriteData(a []string) error {
	if len(a) != 1 {
		return fmt.Errorf("write_data <file>")
	}
	if in.st == nil {
		return fmt.Errorf("no system to write")
	}
	bx := in.bx
	st := in.st
	if in.sim != nil {
		bx = in.sim.Box
		st = in.sim.Store
	}
	f, err := os.Create(a[0])
	if err != nil {
		return err
	}
	defer f.Close()
	return dump.WriteData(f, st, bx, in.masses)
}

// cmdDump configures trajectory output:
// dump <id> all xyz|custom <every> <file>
func (in *Interp) cmdDump(a []string) error {
	if len(a) < 5 {
		return fmt.Errorf("dump <id> <group> xyz|custom <every> <file>")
	}
	switch a[2] {
	case "xyz", "custom":
		in.dumpFormat = a[2]
	default:
		return fmt.Errorf("unsupported dump style %q", a[2])
	}
	n, err := atoi(a[3])
	if err != nil {
		return err
	}
	in.dumpEvery = n
	in.dumpPath = a[4]
	return nil
}

// cmdWriteRestart saves a binary restart: write_restart <file>.
func (in *Interp) cmdWriteRestart(a []string) error {
	if len(a) != 1 {
		return fmt.Errorf("write_restart <file>")
	}
	if in.sim == nil {
		if err := in.finalize(); err != nil {
			return err
		}
	}
	f, err := os.Create(a[0])
	if err != nil {
		return err
	}
	defer f.Close()
	return dump.Capture(in.sim.Store, in.sim.Box, in.sim.Step).WriteBinary(f)
}

// writeDumpFrames appends trajectory frames during a run.
func (in *Interp) writeDumpFrames() error {
	if in.dumpEvery <= 0 || in.dumpPath == "" {
		return nil
	}
	f, err := os.OpenFile(in.dumpPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if in.dumpFormat == "xyz" {
		return dump.WriteXYZ(f, in.sim.Store, in.sim.Box, in.sim.Step)
	}
	return dump.WriteLAMMPSDump(f, in.sim.Store, in.sim.Box, in.sim.Step)
}

// finalize assembles the core.Simulation from accumulated state.
func (in *Interp) finalize() error {
	switch {
	case !in.hasUnit:
		return fmt.Errorf("no units command")
	case !in.hasBox || in.st == nil || in.st.N == 0:
		return fmt.Errorf("no atoms created")
	case in.pairSty == nil || !in.coeffSet:
		return fmt.Errorf("pair style/coefficients incomplete")
	case len(in.fixes) == 0:
		return fmt.Errorf("no integrator fix")
	}
	cfg := core.Config{
		Name:         "script",
		Units:        in.units,
		Box:          in.bx,
		Mass:         in.masses,
		Pair:         in.pairSty,
		Bonds:        in.bondSty,
		Kspace:       in.kspaceS,
		Fixes:        in.fixes,
		Dt:           in.dt,
		Skin:         in.skin,
		NeighEvery:   in.every,
		NeighDelay:   in.delay,
		NeighNoCheck: in.noCheck,
		Seed:         12345,
		ThermoEvery:  in.thermoN,
		ThermoTo:     in.Out,
	}
	in.sim = core.New(cfg, in.st)
	return nil
}

func (in *Interp) one(a []string, dst *float64) error {
	if len(a) < 1 {
		return fmt.Errorf("missing value")
	}
	v, err := atof(a[0])
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func atof(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func atoi(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}
