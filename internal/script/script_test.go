package script_test

import (
	"math"
	"os"
	"strings"
	"testing"

	"gomd/internal/core"
	"gomd/internal/dump"
	"gomd/internal/script"
	"gomd/internal/workload"
)

// ljMelt is the LAMMPS bench in.lj input, nearly verbatim.
const ljMelt = `
# 3d Lennard-Jones melt
units        lj
atom_style   atomic
lattice      fcc 0.8442
region       box block 0 10 0 10 0 10
create_box   1 box
create_atoms 1 box
mass         1 1.0
velocity     all create 1.44 87287
pair_style   lj/cut 2.5
pair_coeff   1 1 1.0 1.0
neighbor     0.3 bin
neigh_modify delay 0 every 20 check no
fix          1 all nve
thermo       50
timestep     0.005
run          100
`

func TestLJMeltScript(t *testing.T) {
	var out strings.Builder
	in := script.New(&out)
	if err := in.Run(strings.NewReader(ljMelt)); err != nil {
		t.Fatal(err)
	}
	sim := in.Sim()
	if sim == nil {
		t.Fatal("no simulation after run")
	}
	if sim.Store.N != 4000 {
		t.Errorf("atom count %d want 4000 (10^3 fcc cells)", sim.Store.N)
	}
	if sim.Step != 100 {
		t.Errorf("steps %d", sim.Step)
	}
	th := sim.ComputeThermo()
	if th.Temperature < 0.4 || th.Temperature > 1.5 {
		t.Errorf("melt temperature %v implausible", th.Temperature)
	}
	if !strings.Contains(out.String(), "Created 4000 atoms") {
		t.Errorf("missing creation output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "run complete") {
		t.Errorf("missing run output")
	}
}

// TestScriptMatchesWorkload: the scripted LJ system must agree with the
// programmatic workload builder on density and initial temperature.
func TestScriptMatchesWorkload(t *testing.T) {
	var out strings.Builder
	in := script.New(&out)
	if err := in.Run(strings.NewReader(strings.Replace(ljMelt, "run          100", "run 0", 1))); err != nil {
		// run 0 is valid: build and evaluate once.
		t.Fatal(err)
	}
	sim := in.Sim()
	cfg, st := workload.MustBuild(workload.LJ, workload.Options{Atoms: 4000})
	if sim.Store.N != st.N {
		t.Errorf("atom counts differ: script %d workload %d", sim.Store.N, st.N)
	}
	vs := sim.Box.Volume()
	vw := cfg.Box.Volume()
	if math.Abs(vs-vw) > 1e-9*vw {
		t.Errorf("box volumes differ: %v vs %v", vs, vw)
	}
}

func TestContinuationAndComments(t *testing.T) {
	src := `
units lj
lattice fcc 0.8442   # density in reduced units
region box &
  block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
pair_style lj/cut 2.5
pair_coeff * * 1.0 1.0
fix 1 all nve
run 1
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Store.N != 256 {
		t.Errorf("atoms %d want 256", in.Sim().Store.N)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "units lj\nbogus_command 1 2 3\n"
	err := script.New(nil).Run(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestRunWithoutSetupFails(t *testing.T) {
	for _, src := range []string{
		"run 10\n",
		"units lj\nrun 10\n",
		"units lj\nlattice fcc 0.8\nregion b block 0 2 0 2 0 2\ncreate_box 1 b\ncreate_atoms 1 b\nrun 5\n",
	} {
		if err := script.New(nil).Run(strings.NewReader(src)); err == nil {
			t.Errorf("incomplete script accepted: %q", src)
		}
	}
}

func TestGranularScript(t *testing.T) {
	src := `
units lj
lattice sc 1.0
region box block 0 6 0 6 0 6
create_box 1 box
create_atoms 1 box
mass 1 1.0
pair_style gran/hooke/history
neighbor 0.1 bin
fix 1 all nve
fix 2 all gravity 1.0 chute 26.0
fix 3 all wall/gran
timestep 0.0001
run 20
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Store.N != 216 {
		t.Errorf("grains %d", in.Sim().Store.N)
	}
}

func TestMultipleRuns(t *testing.T) {
	src := strings.Replace(ljMelt, "run          100", "run 10\nrun 15", 1)
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Step != 25 {
		t.Errorf("steps %d want 25", in.Sim().Step)
	}
}

func TestEAMScript(t *testing.T) {
	src := `
units metal
lattice fcc 3.615
region box block 0 5 0 5 0 5
create_box 1 box
create_atoms 1 box
mass 1 63.55
velocity all create 1600 12345
pair_style eam
neighbor 1.0 bin
neigh_modify delay 5 every 1
fix 1 all nve
timestep 0.005
run 20
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	sim := in.Sim()
	if sim.Store.N != 500 {
		t.Errorf("Cu atoms %d", sim.Store.N)
	}
	th := sim.ComputeThermo()
	if th.PotEnergy >= 0 {
		t.Errorf("metal PE %v should be cohesive (negative)", th.PotEnergy)
	}
	var _ *core.Simulation = sim
}

// TestRhodoLikeScript drives the charged-molecular path: charmm pair
// style, pppm kspace, npt fix. (Charges default to zero in scripted
// systems, so the k-space solve is trivial but the full pipeline runs.)
func TestRhodoLikeScript(t *testing.T) {
	src := `
units real
lattice sc 3.1
region box block 0 6 0 6 0 6
create_box 2 box
create_atoms 1 box
mass 1 15.9994
mass 2 1.008
velocity all create 300.0 4928459
pair_style lj/charmm/coul/long 8.0 10.0
pair_coeff 1 1 0.1553 3.166
pair_coeff 2 2 0.0 1.0
kspace_style pppm 1.0e-4
neighbor 2.0 bin
neigh_modify delay 5 every 1
fix 1 all npt temp 300.0 300.0 100.0 iso 0.0 0.0 1000.0
timestep 2.0
run 5
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	sim := in.Sim()
	if sim.Store.N != 216 {
		t.Errorf("atoms %d", sim.Store.N)
	}
	if sim.Cfg.Kspace == nil {
		t.Error("kspace solver not wired")
	}
	if sim.Cfg.NeighDelay != 5 {
		t.Errorf("neigh delay %d", sim.Cfg.NeighDelay)
	}
}

func TestEwaldKspaceScript(t *testing.T) {
	src := `
units real
lattice sc 4.0
region box block 0 3 0 3 0 3
create_box 1 box
create_atoms 1 box
mass 1 1.0
pair_style lj/charmm/coul/long 6.0 8.0
pair_coeff 1 1 0.1 3.0
kspace_style ewald 1.0e-5
fix 1 all nve
run 2
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Cfg.Kspace.Name() != "ewald" {
		t.Errorf("solver %q", in.Sim().Cfg.Kspace.Name())
	}
}

func TestScriptBadInputs(t *testing.T) {
	cases := []string{
		"units klingon\n",
		"units lj\nlattice hcp 1.0\n",
		"units lj\nlattice fcc 0.8\nregion r sphere 0 0 0 5\n",
		"units lj\nlattice fcc 0.8\nregion r block 0 2 0 2 0 2\ncreate_box 1 nope\n",
		"units lj\nmass 1 1.0\n",             // mass before create_box (type range)
		"units lj\npair_coeff 1 1 1.0 1.0\n", // coeff before style
		"units lj\nfix 1 all quantum\n",
		"units lj\ntimestep abc\n",
		"units lj\nvelocity all set 1 2 3\n",
		"units lj\nkspace_style pppm\n",
	}
	for _, src := range cases {
		if err := script.New(nil).Run(strings.NewReader(src)); err == nil {
			t.Errorf("bad script accepted: %q", src)
		}
	}
}

func TestCreateAtomsRegionSubset(t *testing.T) {
	src := `
units lj
lattice sc 1.0
region box block 0 6 0 6 0 6
region lower block 0 6 0 6 0 3
create_box 1 box
create_atoms 1 region lower
mass 1 1.0
pair_style lj/cut 1.5
pair_coeff * * 1.0 1.0
fix 1 all nve
run 1
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if n := in.Sim().Store.N; n != 108 {
		t.Errorf("lower-half atoms %d want 108", n)
	}
}

func TestDumpAndRestartCommands(t *testing.T) {
	dir := t.TempDir()
	traj := dir + "/melt.xyz"
	rest := dir + "/melt.restart"
	src := `
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 11
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
fix 1 all nve
dump 1 all xyz 5 ` + traj + `
run 10
write_restart ` + rest + `
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	// Two frames (steps 5 and 10), each 256 atoms + 2 header lines.
	lines := strings.Count(string(data), "\n")
	if lines != 2*(256+2) {
		t.Errorf("trajectory lines %d want %d", lines, 2*(256+2))
	}
	rf, err := os.Open(rest)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := dump.ReadBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Step != 10 || len(r.Atoms) != 256 {
		t.Errorf("restart step=%d atoms=%d", r.Step, len(r.Atoms))
	}
}

func TestMorseNVTScript(t *testing.T) {
	src := `
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.0 77
pair_style morse 3.0
pair_coeff * * 1.0 2.0 1.1
fix 1 all nvt temp 1.0 1.0 0.5
run 20
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Cfg.Pair.Name() != "morse" {
		t.Errorf("pair %q", in.Sim().Cfg.Pair.Name())
	}
}

// TestReadDataScript: a molecular system written as a data file drives a
// scripted run end to end (the standard LAMMPS workflow for topologies
// that create_atoms cannot build).
func TestReadDataScript(t *testing.T) {
	dir := t.TempDir()
	dataPath := dir + "/chain.data"

	// Build a small FENE melt and save it as a data file.
	cfg, st := workload.MustBuild(workload.Chain, workload.Options{Atoms: 600, Seed: 3})
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.WriteData(f, st, cfg.Box, cfg.Mass); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src := `
units lj
read_data ` + dataPath + `
pair_style lj/cut 1.122462
pair_coeff * * 1.0 1.0
bond_style fene
bond_coeff 1 30.0 1.5 1.0 1.0
neighbor 0.4 bin
fix 1 all nve/limit 0.1
timestep 0.005
run 10
write_data ` + dir + `/out.data
`
	in := script.New(nil)
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Sim().Store.N != st.N {
		t.Errorf("atoms %d vs %d", in.Sim().Store.N, st.N)
	}
	// Bonds survived into the scripted run... indirectly: write_data
	// output must contain a Bonds section.
	out, err := os.ReadFile(dir + "/out.data")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "Bonds") {
		t.Error("scripted system lost its bonds")
	}
	if len(in.Sim().Cfg.Bonds) != 1 || in.Sim().Cfg.Bonds[0].Name() != "fene" {
		t.Errorf("bond style not wired: %+v", in.Sim().Cfg.Bonds)
	}
	if in.Sim().Counters.BondTerms == 0 {
		t.Error("no bond terms evaluated in scripted run")
	}
}
