package script

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// commands lists every script command the interpreter's exec switch
// accepts. Validate checks submissions against it without executing
// anything, so a job server can reject an unknown command at admission
// time instead of failing the job mid-run.
var commands = map[string]bool{
	"units": true, "atom_style": true, "lattice": true, "region": true,
	"create_box": true, "create_atoms": true, "mass": true,
	"velocity": true, "pair_style": true, "pair_coeff": true,
	"neighbor": true, "neigh_modify": true, "kspace_style": true,
	"bond_style": true, "angle_style": true, "dihedral_style": true,
	"bond_coeff": true, "angle_coeff": true, "dihedral_coeff": true,
	"fix": true, "timestep": true, "thermo": true, "print": true,
	"log": true, "echo": true, "boundary": true, "atom_modify": true,
	"comm_modify": true, "pair_modify": true, "read_data": true,
	"write_data": true, "dump": true, "write_restart": true, "run": true,
}

// Validate scans a script without executing it: comments, blank lines,
// and `&` continuations are handled exactly as Run handles them, and
// the first unknown command (or a script with no run command) is an
// error. It is a syntax-level admission check — argument errors still
// surface at execution time — so it never touches the filesystem and
// is safe to call on untrusted input.
func Validate(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	sawRun := false
	var cont strings.Builder
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if strings.HasSuffix(text, "&") {
			cont.WriteString(strings.TrimSuffix(text, "&"))
			cont.WriteByte(' ')
			continue
		}
		if cont.Len() > 0 {
			text = cont.String() + text
			cont.Reset()
		}
		if text == "" {
			continue
		}
		tok := strings.Fields(text)
		if !commands[tok[0]] {
			return fmt.Errorf("line %d: unknown command %q", line, tok[0])
		}
		if tok[0] == "run" {
			sawRun = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawRun {
		return fmt.Errorf("script has no run command")
	}
	return nil
}
