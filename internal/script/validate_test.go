package script

import (
	"strings"
	"testing"
)

func TestValidateAcceptsRealScript(t *testing.T) {
	src := `# comment line
units        lj
lattice      fcc 0.8442
region       box block 0 10 0 10 0 10
create_box   1 box
create_atoms 1 box
mass         1 1.0
velocity     all create 1.44 87287
pair_style   lj/cut 2.5
pair_coeff   1 1 &
             1.0 1.0
fix          1 all nve
thermo       50
timestep     0.005
run          200
`
	if err := Validate(strings.NewReader(src)); err != nil {
		t.Fatalf("Validate rejected a valid script: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown-command", "units lj\nexplode all\nrun 5\n", "unknown command"},
		{"unknown-line-number", "units lj\n\n# c\nbogus\nrun 5\n", "line 4"},
		{"no-run", "units lj\ntimestep 0.005\n", "no run command"},
		{"continuation-hides-nothing", "pair_style &\nbroken 2.5\nrun 1\n", ""},
		{"unknown-after-continuation", "zap &\n1 2\nrun 1\n", "unknown command"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(strings.NewReader(tc.src))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateCoversInterpreter: every command Validate knows must be
// one the interpreter executes, and vice versa — the two tables cannot
// drift apart silently. The interpreter side is probed by running a
// one-command script and checking for its "unknown command" error.
func TestValidateCoversInterpreter(t *testing.T) {
	for cmd := range commands {
		// A bare command chokes on its missing arguments (error or panic)
		// — either way it got past name dispatch. Only the "unknown
		// command" error means the name itself was rejected.
		err := func() (err error) {
			defer func() { recover() }()
			return New(nullWriter{}).Run(strings.NewReader(cmd + "\n"))
		}()
		if err != nil && strings.Contains(err.Error(), "unknown command") {
			t.Errorf("Validate accepts %q but the interpreter does not", cmd)
		}
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
