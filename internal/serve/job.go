package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"gomd/internal/fault"
	"gomd/internal/pair"
	"gomd/internal/script"
	"gomd/internal/workload"
)

// JobSpec is one submitted simulation. Exactly one of Workload or
// Script must be set: workload jobs run decomposed under a Supervisor
// (checkpointed, crash-resumable), script jobs run the LAMMPS-style
// interpreter serially (validated at admission, restarted from scratch
// if the daemon dies mid-run — the interpreter has no checkpoint
// surface).
type JobSpec struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name,omitempty"`

	// Workload jobs.
	Workload        string `json:"workload,omitempty"`
	Atoms           int    `json:"atoms,omitempty"`
	Steps           int    `json:"steps,omitempty"`
	Ranks           int    `json:"ranks,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	ThermoEvery     int    `json:"thermo_every,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	KeepCheckpoints int    `json:"keep_checkpoints,omitempty"`
	Retries         int    `json:"retries,omitempty"`
	Precision       string `json:"precision,omitempty"`
	// Fault is a deterministic fault-injection plan (internal/fault
	// syntax) scoped to this job — the drill hook the kill-daemon and
	// recovery tests use.
	Fault string `json:"fault,omitempty"`

	// Script jobs.
	Script string `json:"script,omitempty"`
}

// Slots is the job's admission cost against the server's shared slot
// budget: ranks x workers for a workload job (every rank is a
// goroutine, every worker a pool thread), 1 for a serial script job.
func (s *JobSpec) Slots() int {
	if s.Script != "" {
		return 1
	}
	r, w := s.Ranks, s.Workers
	if r < 1 {
		r = 1
	}
	if w < 1 {
		w = 1
	}
	return r * w
}

// normalize fills defaults and validates the spec, returning an error
// that maps to a 400 (the job could never run, no point queueing it).
func (s *JobSpec) normalize() error {
	if (s.Workload == "") == (s.Script == "") {
		return errors.New("exactly one of workload or script must be set")
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Script != "" {
		if err := script.Validate(strings.NewReader(s.Script)); err != nil {
			return fmt.Errorf("script: %v", err)
		}
		return nil
	}
	known := false
	for _, n := range workload.All() {
		if string(n) == s.Workload {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown workload %q (want one of %v)", s.Workload, workload.All())
	}
	if s.Steps <= 0 {
		return errors.New("steps must be > 0")
	}
	if s.Ranks < 1 {
		s.Ranks = 1
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	if s.Atoms == 0 {
		s.Atoms = 4000
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.ThermoEvery <= 0 {
		s.ThermoEvery = 10
	}
	if s.CheckpointEvery < 0 {
		return errors.New("checkpoint_every must be >= 0")
	}
	if s.KeepCheckpoints < 1 {
		s.KeepCheckpoints = 2
	}
	switch s.Precision {
	case "", "double", "single", "mixed":
	default:
		return fmt.Errorf("unknown precision %q (want single, mixed, double)", s.Precision)
	}
	if s.Fault != "" {
		if _, err := fault.Parse(s.Fault, s.Seed); err != nil {
			return err
		}
	}
	return nil
}

// precision maps the spec's precision string (already validated).
func (s *JobSpec) precision() pair.Precision {
	switch s.Precision {
	case "single":
		return pair.Single
	case "mixed":
		return pair.Mixed
	default:
		return pair.Double
	}
}

// options is the workload build recipe the spec pins down; every
// resume rebuilds from the identical recipe, which is what makes a
// restored run bit-identical to an uninterrupted one.
func (s *JobSpec) options() workload.Options {
	return workload.Options{
		Atoms:       s.Atoms,
		Precision:   s.precision(),
		Seed:        s.Seed,
		ThermoEvery: s.ThermoEvery,
	}
}

// Frame is one thermo sample streamed over SSE and persisted to the
// job's frames file.
type Frame struct {
	Step int64   `json:"step"`
	Temp float64 `json:"temp"`
	Prs  float64 `json:"press"`
	PE   float64 `json:"pe"`
	KE   float64 `json:"ke"`
	Etot float64 `json:"etot"`
}

// Result is a finished job's summary, journaled with the terminal
// transition so it survives the daemon.
type Result struct {
	Steps      int64  `json:"steps"`
	Recoveries int    `json:"recoveries"`
	WallMillis int64  `json:"wall_ms"`
	Final      *Frame `json:"final,omitempty"`
	Output     string `json:"output,omitempty"` // script jobs: interpreter output
}

// Event is one SSE event: Name is the SSE event type (thermo, log,
// state, done), Data its JSON payload.
type Event struct {
	Name string
	Data string
}

// hub fans a job's event stream out to SSE subscribers. History is
// retained so a late subscriber replays the stream from the start; a
// slow subscriber that fills its buffer drops live events (it still
// holds the history it got at subscribe time — SSE is a monitoring
// surface, the durable record is the frames file and the journal).
type hub struct {
	mu      sync.Mutex
	history []Event
	subs    map[chan Event]struct{}
	closed  bool
}

func newHub() *hub {
	return &hub{subs: map[chan Event]struct{}{}}
}

// publish appends to history and offers the event to every subscriber.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, ev)
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// close ends the stream: subscribers' channels are closed after the
// history they already hold.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// subscribe returns the history so far plus a live channel (nil when
// the stream already ended — the history is complete).
func (h *hub) subscribe() ([]Event, chan Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := append([]Event(nil), h.history...)
	if h.closed {
		return hist, nil
	}
	ch := make(chan Event, 256)
	h.subs[ch] = struct{}{}
	return hist, ch
}

// unsubscribe detaches a live channel.
func (h *hub) unsubscribe(ch chan Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}
