// Package serve is the simulation-as-a-service layer: a crash-durable
// job queue, an admission-controlled scheduler running many supervised
// worlds over a shared slot budget, and the HTTP API that cmd/mdserve
// mounts. Every externally visible job state transition goes through a
// write-ahead journal (appended and fsync'd before the transition takes
// effect), so a daemon crash loses at most work since the last
// checkpoint — never the queue itself: on restart the journal replays,
// finished jobs keep their results, queued jobs are still queued, and
// jobs that were running resume from their newest valid checkpoint
// generation.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// State is a job's lifecycle state. Transitions form a small DAG:
//
//	queued ──> running ──> done
//	   │          │    └─> failed
//	   │          ├──────> cancelled
//	   │          └──────> queued     (requeued after a daemon restart)
//	   └─────────────────> cancelled
//
// done/failed/cancelled are terminal. The journal enforces these
// transitions at append time, so a replayed journal can never put a job
// into a state the scheduler could not have produced.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state admits no further transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// validNext reports whether from -> to is a legal transition ("" is the
// pre-submission state, so ""->queued admits a new job).
func validNext(from, to State) bool {
	switch from {
	case "":
		return to == StateQueued
	case StateQueued:
		return to == StateRunning || to == StateCancelled
	case StateRunning:
		return to == StateDone || to == StateFailed ||
			to == StateCancelled || to == StateQueued
	default:
		return false
	}
}

// record is one journal line. The first record of a job carries its
// spec; later records carry only the transition (plus step for
// progress, detail for failure causes, result for the terminal done).
type record struct {
	Seq    int64    `json:"seq"`
	Job    string   `json:"job"`
	State  State    `json:"state"`
	Spec   *JobSpec `json:"spec,omitempty"`
	Detail string   `json:"detail,omitempty"`
	Step   int64    `json:"step,omitempty"`
	Result *Result  `json:"result,omitempty"`
}

// JobState is one job's reconstructed state after a journal replay.
type JobState struct {
	ID     string
	Spec   JobSpec
	State  State
	Detail string
	Step   int64
	Result *Result
}

// Journal is the write-ahead log of job state. Appends are
// fsync-before-acknowledge: a transition the caller observed as applied
// is durable, so the queue a crashed daemon replays is never newer than
// what clients were told. The file is append-only JSONL; a crash can
// tear at most the final line (a partial write), and Open truncates
// that torn tail away rather than rejecting the whole log.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	seq     int64
	appends int64
	state   map[string]State
	corrupt func(n int64, path string)
}

// OpenJournal opens (creating if needed) the journal at path and
// replays it: the longest decodable prefix of well-formed lines wins,
// anything after the first torn or corrupt line is truncated off, and
// the surviving records fold into per-job states returned in
// first-submission order. Records encoding an illegal transition are
// skipped (they cannot occur through Append; a skip means the file was
// damaged in-place, and dropping the record is safer than trusting it).
func OpenJournal(path string) (*Journal, []JobState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	j := &Journal{f: f, path: path, state: map[string]State{}}

	jobs := map[string]*JobState{}
	var order []string
	good := 0 // byte length of the valid prefix
	for len(raw) > good {
		nl := bytes.IndexByte(raw[good:], '\n')
		if nl < 0 {
			break // unterminated tail: torn mid-write
		}
		line := raw[good : good+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == "" {
			break // corrupt line: stop at the good prefix
		}
		good += nl + 1
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		js := jobs[rec.Job]
		if js == nil {
			if rec.Spec == nil || !validNext("", rec.State) {
				continue // job's first record must be queued+spec
			}
			js = &JobState{ID: rec.Job, Spec: *rec.Spec}
			jobs[rec.Job] = js
			order = append(order, rec.Job)
		} else if !validNext(js.State, rec.State) {
			continue
		}
		js.State = rec.State
		js.Detail = rec.Detail
		if rec.Step > 0 {
			js.Step = rec.Step
		}
		if rec.Result != nil {
			js.Result = rec.Result
		}
	}
	if good < len(raw) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seeking journal: %w", err)
	}
	out := make([]JobState, 0, len(order))
	for _, id := range order {
		j.state[id] = jobs[id].State
		out = append(out, *jobs[id])
	}
	return j, out, nil
}

// SetCorruptor installs a post-append hook given (append ordinal, path)
// — the tear-journal fault drill. It runs after the fsync, modeling
// damage from a crash, not from the writer.
func (j *Journal) SetCorruptor(fn func(n int64, path string)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.corrupt = fn
}

// Append journals one transition, enforcing the state machine and
// returning only after the line is fsync'd. A new job's first append
// must be StateQueued with a spec.
func (j *Journal) Append(id string, to State, spec *JobSpec, detail string, step int64, res *Result) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	from := j.state[id]
	if !validNext(from, to) {
		return fmt.Errorf("serve: illegal transition %s: %q -> %q", id, from, to)
	}
	if from == "" && spec == nil {
		return fmt.Errorf("serve: first record of %s must carry its spec", id)
	}
	j.seq++
	rec := record{Seq: j.seq, Job: id, State: to, Spec: spec,
		Detail: detail, Step: step, Result: res}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("serve: appending journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	j.state[id] = to
	j.appends++
	if j.corrupt != nil {
		j.corrupt(j.appends, j.path)
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
