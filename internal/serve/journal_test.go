package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestJournal(t *testing.T, path string) (*Journal, []JobState) {
	t.Helper()
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, replayed
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	j, replayed := openTestJournal(t, path)
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	spec := JobSpec{Workload: "lj", Steps: 100, Tenant: "a"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append("j-0", StateQueued, &spec, "", 0, nil))
	must(j.Append("j-0", StateRunning, nil, "", 0, nil))
	must(j.Append("j-0", StateDone, nil, "", 100, &Result{Steps: 100}))
	must(j.Append("j-1", StateQueued, &spec, "", 0, nil))
	must(j.Append("j-1", StateRunning, nil, "", 0, nil))
	must(j.Append("j-2", StateQueued, &spec, "", 0, nil))
	must(j.Close())

	j2, replayed := openTestJournal(t, path)
	defer j2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(replayed))
	}
	byID := map[string]JobState{}
	for _, js := range replayed {
		byID[js.ID] = js
	}
	if st := byID["j-0"]; st.State != StateDone || st.Result == nil || st.Result.Steps != 100 {
		t.Fatalf("j-0 replayed as %+v", st)
	}
	if st := byID["j-1"]; st.State != StateRunning {
		t.Fatalf("j-1 replayed as %q, want running", st.State)
	}
	if st := byID["j-2"]; st.State != StateQueued || st.Spec.Workload != "lj" {
		t.Fatalf("j-2 replayed as %+v", st)
	}
	// Replay preserves submission order.
	if replayed[0].ID != "j-0" || replayed[2].ID != "j-2" {
		t.Fatalf("replay order %v", []string{replayed[0].ID, replayed[1].ID, replayed[2].ID})
	}
}

func TestJournalRejectsIllegalTransitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	j, _ := openTestJournal(t, path)
	defer j.Close()
	spec := JobSpec{Workload: "lj", Steps: 10}
	if err := j.Append("j-0", StateRunning, nil, "", 0, nil); err == nil {
		t.Fatal("running before queued accepted")
	}
	if err := j.Append("j-0", StateQueued, nil, "", 0, nil); err == nil {
		t.Fatal("first queued record without spec accepted")
	}
	if err := j.Append("j-0", StateQueued, &spec, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j-0", StateDone, nil, "", 0, nil); err == nil {
		t.Fatal("queued -> done accepted")
	}
	if err := j.Append("j-0", StateCancelled, nil, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j-0", StateQueued, &spec, "", 0, nil); err == nil {
		t.Fatal("transition out of terminal state accepted")
	}
}

// TestJournalTornTail drops crash-shaped damage on the journal tail —
// an unterminated partial line, a corrupted line, trailing garbage —
// and requires replay to keep the longest good prefix, truncate the
// rest, and stay appendable.
func TestJournalTornTail(t *testing.T) {
	spec := JobSpec{Workload: "lj", Steps: 10}
	seed := func(t *testing.T, path string) {
		j, _ := openTestJournal(t, path)
		for _, id := range []string{"j-0", "j-1"} {
			if err := j.Append(id, StateQueued, &spec, "", 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Append("j-0", StateRunning, nil, "", 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
		// wantStates after replay (j-0, j-1); "" = job lost entirely
		j0, j1 State
	}{
		{"unterminated-tail", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			f.WriteString(`{"seq":9,"job":"j-1","state":"run`)
			f.Close()
		}, StateRunning, StateQueued},
		{"torn-mid-record", func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			os.WriteFile(path, raw[:len(raw)-7], 0o644) // tear the last line
		}, StateQueued, StateQueued},
		{"corrupt-byte-in-tail", func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			raw[len(raw)-10] ^= 0xff
			os.WriteFile(path, raw, 0o644)
		}, StateQueued, StateQueued},
		{"garbage-line", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			f.WriteString("not json at all\n")
			f.Close()
		}, StateRunning, StateQueued},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "serve.journal")
			seed(t, path)
			tc.damage(t, path)
			j, replayed := openTestJournal(t, path)
			states := map[string]State{}
			for _, js := range replayed {
				states[js.ID] = js.State
			}
			if states["j-0"] != tc.j0 || states["j-1"] != tc.j1 {
				t.Fatalf("replayed j-0=%q j-1=%q, want %q/%q",
					states["j-0"], states["j-1"], tc.j0, tc.j1)
			}
			// The torn tail is gone from disk and the journal appends on.
			if err := j.Append("j-2", StateQueued, &spec, "", 0, nil); err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			raw, _ := os.ReadFile(path)
			for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
				if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
					t.Fatalf("journal still holds a malformed line: %q", line)
				}
			}
			j2, replayed2 := openTestJournal(t, path)
			j2.Close()
			if len(replayed2) != len(replayed)+1 {
				t.Fatalf("second replay found %d jobs, want %d", len(replayed2), len(replayed)+1)
			}
		})
	}
}

// TestJournalTearDrill runs the same scenario through the fault
// injector's tear-journal drill instead of hand-made damage.
func TestJournalTearDrill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	j, _ := openTestJournal(t, path)
	spec := JobSpec{Workload: "lj", Steps: 10}
	if err := j.Append("j-0", StateQueued, &spec, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	inj := mustParseFault(t, "tear-journal:append=2,bytes=9")
	j.SetCorruptor(inj.CorruptJournal)
	if err := j.Append("j-0", StateRunning, nil, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, replayed := openTestJournal(t, path)
	if len(replayed) != 1 || replayed[0].State != StateQueued {
		t.Fatalf("replay after tear drill: %+v", replayed)
	}
}
