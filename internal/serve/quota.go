package serve

import "fmt"

// Limits is the server's admission-control policy. Zero values mean
// unlimited. Slots are rank x worker units (JobSpec.Slots): the
// scheduler never has more slots running than SlotBudget, and never
// more of one tenant's than MaxSlotsPerTenant — queued jobs wait for
// capacity, over-quota submissions are pushed back at the door.
type Limits struct {
	// MaxQueue bounds jobs admitted but not yet terminal (queued +
	// running), across all tenants. Submissions beyond it get 429 +
	// Retry-After: the queue is the crash-durability surface, and an
	// unbounded one turns a traffic spike into an unbounded journal.
	MaxQueue int
	// MaxQueuePerTenant is MaxQueue scoped to one tenant — one noisy
	// client cannot occupy the whole queue.
	MaxQueuePerTenant int
	// SlotBudget bounds slots running concurrently (0 = unlimited).
	SlotBudget int
	// MaxSlotsPerTenant bounds one tenant's concurrently running slots.
	MaxSlotsPerTenant int
	// MaxSlotsPerJob rejects any single job larger than this outright
	// (400, not 429: it could never be scheduled).
	MaxSlotsPerJob int
}

// rejection is an admission refusal: Code is the HTTP status (400 =
// never schedulable, 429 = try later, 503 = draining), RetryAfter the
// Retry-After seconds hint for 429s.
type rejection struct {
	Code       int
	RetryAfter int
	Reason     string
}

func (r *rejection) Error() string { return r.Reason }

// admit decides a submission against the policy, given the current
// non-terminal job count and the submitting tenant's share of it.
// Structural refusals (the job exceeds a hard cap and will never fit)
// are 400s; capacity refusals (full right now) are 429s.
func (l Limits) admit(spec *JobSpec, pending, tenantPending int) *rejection {
	slots := spec.Slots()
	if l.MaxSlotsPerJob > 0 && slots > l.MaxSlotsPerJob {
		return &rejection{Code: 400, Reason: fmt.Sprintf(
			"job needs %d slots, per-job cap is %d", slots, l.MaxSlotsPerJob)}
	}
	if l.SlotBudget > 0 && slots > l.SlotBudget {
		return &rejection{Code: 400, Reason: fmt.Sprintf(
			"job needs %d slots, server budget is %d", slots, l.SlotBudget)}
	}
	if l.MaxSlotsPerTenant > 0 && slots > l.MaxSlotsPerTenant {
		return &rejection{Code: 400, Reason: fmt.Sprintf(
			"job needs %d slots, tenant cap is %d", slots, l.MaxSlotsPerTenant)}
	}
	if l.MaxQueue > 0 && pending >= l.MaxQueue {
		return &rejection{Code: 429, RetryAfter: 2, Reason: fmt.Sprintf(
			"queue full (%d jobs pending)", pending)}
	}
	if l.MaxQueuePerTenant > 0 && tenantPending >= l.MaxQueuePerTenant {
		return &rejection{Code: 429, RetryAfter: 2, Reason: fmt.Sprintf(
			"tenant queue full (%d jobs pending)", tenantPending)}
	}
	return nil
}

// fits reports whether a queued job can start now, given the global
// slots in use and its tenant's share.
func (l Limits) fits(spec *JobSpec, usedSlots, tenantSlots int) bool {
	slots := spec.Slots()
	if l.SlotBudget > 0 && usedSlots+slots > l.SlotBudget {
		return false
	}
	if l.MaxSlotsPerTenant > 0 && tenantSlots+slots > l.MaxSlotsPerTenant {
		return false
	}
	return true
}
