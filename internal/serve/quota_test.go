package serve

import "testing"

// TestAdmissionDecisions is the table-driven policy check: structural
// refusals are 400s, capacity refusals 429s with a Retry-After hint.
func TestAdmissionDecisions(t *testing.T) {
	wl := func(ranks, workers int) *JobSpec {
		return &JobSpec{Workload: "lj", Steps: 10, Ranks: ranks, Workers: workers}
	}
	cases := []struct {
		name          string
		limits        Limits
		spec          *JobSpec
		pending       int
		tenantPending int
		wantCode      int // 0 = admitted
	}{
		{"unlimited", Limits{}, wl(16, 8), 1000, 1000, 0},
		{"fits-everything", Limits{MaxQueue: 10, MaxQueuePerTenant: 5, SlotBudget: 8, MaxSlotsPerTenant: 8, MaxSlotsPerJob: 8}, wl(2, 2), 0, 0, 0},
		{"job-over-per-job-cap", Limits{MaxSlotsPerJob: 4}, wl(4, 2), 0, 0, 400},
		{"job-over-budget", Limits{SlotBudget: 4}, wl(8, 1), 0, 0, 400},
		{"job-over-tenant-slots", Limits{MaxSlotsPerTenant: 2}, wl(4, 1), 0, 0, 400},
		{"queue-full", Limits{MaxQueue: 3}, wl(1, 1), 3, 0, 429},
		{"queue-has-room", Limits{MaxQueue: 3}, wl(1, 1), 2, 0, 0},
		{"tenant-queue-full", Limits{MaxQueuePerTenant: 2}, wl(1, 1), 5, 2, 429},
		{"tenant-queue-has-room", Limits{MaxQueuePerTenant: 2}, wl(1, 1), 5, 1, 0},
		{"script-costs-one-slot", Limits{MaxSlotsPerJob: 1}, &JobSpec{Script: "run 1\n", Ranks: 8}, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rej := tc.limits.admit(tc.spec, tc.pending, tc.tenantPending)
			switch {
			case tc.wantCode == 0 && rej != nil:
				t.Fatalf("rejected: %d %s", rej.Code, rej.Reason)
			case tc.wantCode != 0 && rej == nil:
				t.Fatalf("admitted, want %d", tc.wantCode)
			case tc.wantCode != 0 && rej.Code != tc.wantCode:
				t.Fatalf("code %d (%s), want %d", rej.Code, rej.Reason, tc.wantCode)
			}
			if rej != nil && rej.Code == 429 && rej.RetryAfter <= 0 {
				t.Fatalf("429 without a Retry-After hint: %+v", rej)
			}
		})
	}
}

// TestSchedulingFits checks the run-now decision against global and
// per-tenant slot headroom.
func TestSchedulingFits(t *testing.T) {
	spec := &JobSpec{Workload: "lj", Steps: 10, Ranks: 2, Workers: 2} // 4 slots
	cases := []struct {
		name        string
		limits      Limits
		used        int
		tenantSlots int
		want        bool
	}{
		{"unlimited", Limits{}, 1 << 20, 1 << 20, true},
		{"fits-exactly", Limits{SlotBudget: 8}, 4, 0, true},
		{"over-budget", Limits{SlotBudget: 8}, 5, 0, false},
		{"tenant-fits-exactly", Limits{MaxSlotsPerTenant: 8}, 0, 4, true},
		{"tenant-over", Limits{MaxSlotsPerTenant: 8}, 0, 5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.limits.fits(spec, tc.used, tc.tenantSlots); got != tc.want {
				t.Fatalf("fits = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSpecNormalize covers admission-time validation.
func TestSpecNormalize(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"workload-ok", JobSpec{Workload: "lj", Steps: 10}, true},
		{"script-ok", JobSpec{Script: "timestep 0.005\nrun 10\n"}, true},
		{"neither", JobSpec{}, false},
		{"both", JobSpec{Workload: "lj", Steps: 10, Script: "run 1\n"}, false},
		{"unknown-workload", JobSpec{Workload: "nope", Steps: 10}, false},
		{"no-steps", JobSpec{Workload: "lj"}, false},
		{"bad-precision", JobSpec{Workload: "lj", Steps: 10, Precision: "quad"}, false},
		{"bad-fault", JobSpec{Workload: "lj", Steps: 10, Fault: "zap:rank=1"}, false},
		{"script-unknown-command", JobSpec{Script: "explode everything\nrun 5\n"}, false},
		{"script-no-run", JobSpec{Script: "timestep 0.005\n"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.normalize()
			if tc.ok && err != nil {
				t.Fatalf("normalize: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("normalize accepted an invalid spec")
			}
		})
	}
	// Defaults land.
	spec := JobSpec{Workload: "lj", Steps: 10}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.Tenant != "default" || spec.Ranks != 1 || spec.ThermoEvery <= 0 || spec.KeepCheckpoints < 1 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
}
