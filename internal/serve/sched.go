package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"gomd/internal/atom"
	"gomd/internal/ckpt"
	"gomd/internal/core"
	"gomd/internal/fault"
	"gomd/internal/harness"
	"gomd/internal/obs"
	"gomd/internal/script"
	"gomd/internal/workload"
)

// errHardKill marks a job loop ended by the kill-daemon drill: the
// "daemon" is dead, so nothing downstream may touch the journal.
var errHardKill = errors.New("serve: daemon hard-killed")

// errDrained marks a job loop ended by a graceful drain after reaching
// a checkpoint boundary: the job stays "running" in the journal so the
// next daemon resumes it.
var errDrained = errors.New("serve: drained at checkpoint boundary")

// Server is the simulation service: a durable queue (Journal), an
// admission-controlled scheduler, and the run loops for both job
// kinds. Configure the exported fields, then call Start (which replays
// the journal and begins dispatching); mount Handler on an HTTP
// server for the API.
type Server struct {
	// DataDir holds the journal, per-job checkpoint generations, and
	// per-job frames files. Created if missing.
	DataDir string
	// Limits is the admission/quota policy (zero = unlimited).
	Limits Limits
	// Metrics, when set, receives serve.* counters and gauges and is
	// exposed at /metrics by Handler.
	Metrics *obs.Registry
	// Fault, when set, arms daemon-level drills: kill-daemon (hard
	// process death at a job step) and tear-journal (journal tail damage
	// after an append). Per-job fault plans ride in JobSpec.Fault.
	Fault *fault.Injector
	// OnDaemonKill, when set, runs when a kill-daemon fault fires —
	// cmd/mdserve installs os.Exit here so the drill kills the real
	// process. Tests leave it nil: the server then emulates the crash
	// in-process (every job loop halts with no journal transition, and
	// Killed() closes).
	OnDaemonKill func()

	mu        sync.Mutex
	jr        *Journal
	jobs      map[string]*Job
	order     []*Job
	nextID    int64
	usedSlots int
	draining  bool
	wg        sync.WaitGroup
	hardCtx   context.Context
	hardStop  context.CancelFunc
	killed    chan struct{}
}

// Job is one admitted job. All mutable fields are guarded by the
// server's lock — scheduling granularity is a thermo chunk, so the
// lock is uncontended in practice.
type Job struct {
	ID   string
	Spec JobSpec

	state      State
	detail     string
	step       int64
	recoveries int
	result     *Result
	cancelled  bool
	stop       context.CancelFunc
	hub        *hub
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	Name       string `json:"name,omitempty"`
	State      State  `json:"state"`
	Detail     string `json:"detail,omitempty"`
	Step       int64  `json:"step"`
	Steps      int    `json:"steps,omitempty"`
	Slots      int    `json:"slots"`
	Recoveries int    `json:"recoveries,omitempty"`
}

// Start opens (creating if needed) the data directory and journal,
// replays prior state — terminal jobs keep their results, queued jobs
// re-enter the queue, jobs that were running when the last daemon died
// are requeued (they resume from their newest valid checkpoint
// generation when they reach the front) — and begins dispatching.
func (s *Server) Start() error {
	if err := os.MkdirAll(s.DataDir, 0o755); err != nil {
		return fmt.Errorf("serve: data dir: %w", err)
	}
	jr, replayed, err := OpenJournal(filepath.Join(s.DataDir, "serve.journal"))
	if err != nil {
		return err
	}
	if s.Fault != nil {
		jr.SetCorruptor(s.Fault.CorruptJournal)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jr = jr
	s.jobs = map[string]*Job{}
	s.killed = make(chan struct{})
	s.hardCtx, s.hardStop = context.WithCancel(context.Background())
	for _, js := range replayed {
		job := &Job{ID: js.ID, Spec: js.Spec, state: js.State,
			detail: js.Detail, step: js.Step, result: js.Result, hub: newHub()}
		if n, perr := strconv.ParseInt(strings.TrimPrefix(js.ID, "j-"), 10, 64); perr == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if js.State == StateRunning {
			// The last daemon died with this job in flight; requeue it. The
			// checkpoint store under DataDir still holds its generations, so
			// the run loop resumes instead of restarting where it can.
			if err := jr.Append(js.ID, StateQueued, nil, "requeued after daemon restart", js.Step, nil); err != nil {
				return err
			}
			job.state = StateQueued
			job.detail = "requeued after daemon restart"
			s.count("serve.requeued")
		}
		if job.state.Terminal() {
			job.hub.close()
		}
		s.jobs[js.ID] = job
		s.order = append(s.order, job)
	}
	s.dispatch()
	return nil
}

// Submit admits one job: validation errors and structurally impossible
// jobs come back as 400 rejections, capacity refusals as 429, a
// draining server as 503. An accepted job is journaled (fsync'd)
// before its ID is returned — an acknowledged submission survives a
// crash.
func (s *Server) Submit(spec JobSpec) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.count("serve.rejected")
		return "", &rejection{Code: 503, Reason: "server is draining"}
	}
	if err := spec.normalize(); err != nil {
		s.count("serve.rejected")
		return "", &rejection{Code: 400, Reason: err.Error()}
	}
	pending, tenantPending := 0, 0
	for _, j := range s.jobs {
		if j.state.Terminal() {
			continue
		}
		pending++
		if j.Spec.Tenant == spec.Tenant {
			tenantPending++
		}
	}
	if rej := s.Limits.admit(&spec, pending, tenantPending); rej != nil {
		s.count("serve.rejected")
		return "", rej
	}
	id := fmt.Sprintf("j-%d", s.nextID)
	s.nextID++
	if err := s.jr.Append(id, StateQueued, &spec, "", 0, nil); err != nil {
		return "", err
	}
	job := &Job{ID: id, Spec: spec, state: StateQueued, hub: newHub()}
	s.jobs[id] = job
	s.order = append(s.order, job)
	s.count("serve.submitted")
	s.dispatch()
	return id, nil
}

// Cancel cancels a job: a queued job transitions immediately, a
// running one is interrupted at its next chunk boundary. Terminal jobs
// return an error (nothing to cancel).
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return &rejection{Code: 404, Reason: "no such job"}
	}
	switch job.state {
	case StateQueued:
		if err := s.jr.Append(id, StateCancelled, nil, "cancelled while queued", job.step, nil); err != nil {
			return err
		}
		job.state = StateCancelled
		job.detail = "cancelled while queued"
		s.finishHub(job)
		s.count("serve.cancelled")
		return nil
	case StateRunning:
		job.cancelled = true
		job.stop()
		return nil
	default:
		return &rejection{Code: 409, Reason: fmt.Sprintf("job is %s", job.state)}
	}
}

// Drain performs the graceful-shutdown protocol: stop admitting (503),
// interrupt every running job (each runs on to its next checkpoint
// boundary so a fresh checkpoint generation is on disk, then parks as
// "running" in the journal for the next daemon to resume), and wait up
// to timeout for the loops to finish. Queued jobs simply stay queued.
// The journal stays open — Close flushes and closes it.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	if s.Metrics != nil {
		s.Metrics.Gauge("serve.draining").Set(1)
	}
	var stops []context.CancelFunc
	for _, job := range s.order {
		if job.state == StateRunning {
			job.hub.publish(Event{Name: "drain", Data: `{"draining":true}`})
			stops = append(stops, job.stop)
		}
	}
	s.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %s", timeout)
	}
}

// Close flushes and closes the journal. Call after Drain (or after
// Killed() and Wait() in crash drills).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jr.Close()
}

// Wait blocks until every job loop has returned. Used by tests and the
// crash drill; Drain already waits with a deadline.
func (s *Server) Wait() { s.wg.Wait() }

// Killed returns a channel closed when a kill-daemon drill fires —
// the in-process observer tests use to know the "crash" happened.
func (s *Server) Killed() <-chan struct{} { return s.killed }

// Draining reports whether the drain protocol has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Status returns the API view of one job.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(job), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, job := range s.order {
		out = append(out, s.statusLocked(job))
	}
	return out
}

// Result returns a job's result when it has one (done jobs always do;
// failed/cancelled return state with a nil result).
func (s *Server) Result(id string) (*Result, State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, "", false
	}
	return job.result, job.state, true
}

// Events subscribes to a job's SSE stream: the history so far plus a
// live channel (nil when the stream has ended).
func (s *Server) Events(id string) ([]Event, chan Event, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	hist, ch := job.hub.subscribe()
	return hist, ch, true
}

// Unsubscribe detaches an Events channel.
func (s *Server) Unsubscribe(id string, ch chan Event) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if ok && ch != nil {
		job.hub.unsubscribe(ch)
	}
}

func (s *Server) statusLocked(job *Job) JobStatus {
	return JobStatus{
		ID: job.ID, Tenant: job.Spec.Tenant, Name: job.Spec.Name,
		State: job.state, Detail: job.detail, Step: job.step,
		Steps: job.Spec.Steps, Slots: job.Spec.Slots(),
		Recoveries: job.recoveries,
	}
}

// count bumps a serve.* counter (nil-safe).
func (s *Server) count(name string) {
	if s.Metrics != nil {
		s.Metrics.Counter(name).Inc()
	}
}

// publishGauges refreshes the queue/slot gauges. Caller holds s.mu.
func (s *Server) publishGauges() {
	if s.Metrics == nil {
		return
	}
	queued, running := 0, 0
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	s.Metrics.Gauge("serve.queue_depth").Set(float64(queued))
	s.Metrics.Gauge("serve.running").Set(float64(running))
	s.Metrics.Gauge("serve.slots_used").Set(float64(s.usedSlots))
}

// dispatch starts every queued job that fits the slot budget and its
// tenant's quota, in submission order (FIFO with backfill: a large job
// at the head does not starve a small one behind it, but order is
// otherwise preserved). Caller holds s.mu.
func (s *Server) dispatch() {
	defer s.publishGauges()
	if s.draining || s.hardCtx.Err() != nil {
		return
	}
	tenantSlots := map[string]int{}
	for _, job := range s.order {
		if job.state == StateRunning {
			tenantSlots[job.Spec.Tenant] += job.Spec.Slots()
		}
	}
	for _, job := range s.order {
		if job.state != StateQueued {
			continue
		}
		if !s.Limits.fits(&job.Spec, s.usedSlots, tenantSlots[job.Spec.Tenant]) {
			continue
		}
		if err := s.jr.Append(job.ID, StateRunning, nil, "", job.step, nil); err != nil {
			// The WAL is the durability contract: a job whose start cannot
			// be journaled must not run invisibly. Leave it queued; the next
			// dispatch retries.
			job.detail = fmt.Sprintf("start deferred: %v", err)
			continue
		}
		job.state = StateRunning
		job.detail = ""
		job.cancelled = false
		ctx, stop := context.WithCancel(s.hardCtx)
		job.stop = stop
		s.usedSlots += job.Spec.Slots()
		tenantSlots[job.Spec.Tenant] += job.Spec.Slots()
		s.wg.Add(1)
		go s.runJob(job, ctx)
	}
}

// runJob runs one job to an outcome and journals the transition. The
// hard-kill path journals nothing: the drill models a daemon that
// died, and the whole point is that the journal already on disk is
// enough to recover.
func (s *Server) runJob(job *Job, ctx context.Context) {
	defer s.wg.Done()
	var res *Result
	var err error
	if job.Spec.Script != "" {
		res, err = s.runScript(job, ctx)
	} else {
		res, err = s.runWorkload(job, ctx)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.usedSlots -= job.Spec.Slots()
	switch {
	case errors.Is(err, errHardKill) || (s.hardCtx.Err() != nil && !s.draining):
		// Daemon "crashed": no journal transition, no events. The job is
		// still "running" on disk; the next daemon requeues and resumes it.
		return
	case err == nil:
		if jerr := s.jr.Append(job.ID, StateDone, nil, "", res.Steps, res); jerr != nil {
			err = jerr
			break
		}
		job.state = StateDone
		job.step = res.Steps
		job.result = res
		s.finishHub(job)
		s.count("serve.done")
	case job.cancelled && ctx.Err() != nil:
		if jerr := s.jr.Append(job.ID, StateCancelled, nil, "cancelled", job.step, nil); jerr == nil {
			job.state = StateCancelled
			job.detail = "cancelled"
			s.finishHub(job)
			s.count("serve.cancelled")
		}
	case errors.Is(err, errDrained) || (s.draining && ctx.Err() != nil):
		// Graceful drain: the loop already ran to a checkpoint boundary
		// (or the job kind has nothing to checkpoint). Journal state stays
		// "running" so the next daemon resumes it.
		job.detail = fmt.Sprintf("parked by drain at step %d", job.step)
	}
	if err != nil && job.state == StateRunning && !s.draining {
		if jerr := s.jr.Append(job.ID, StateFailed, nil, err.Error(), job.step, nil); jerr == nil {
			job.state = StateFailed
			job.detail = err.Error()
			s.finishHub(job)
			s.count("serve.failed")
		}
	}
	s.dispatch()
}

// finishHub publishes the terminal "done" event (carrying the final
// status) and closes the job's stream. Caller holds s.mu.
func (s *Server) finishHub(job *Job) {
	data, _ := json.Marshal(s.statusLocked(job))
	job.hub.publish(Event{Name: "done", Data: string(data)})
	job.hub.close()
}

// ckptPath/framesPath are the job's durable artifacts under DataDir.
func (s *Server) ckptPath(job *Job) string {
	return filepath.Join(s.DataDir, job.ID+".ckpt")
}
func (s *Server) framesPath(job *Job) string {
	return filepath.Join(s.DataDir, job.ID+".frames.jsonl")
}

// runWorkload runs a workload job under a Supervisor: checkpointed,
// recovery-supervised, resumable. The chunk loop is aligned to the
// absolute thermo grid so frames land on the same steps whether the
// run was interrupted or not, and every frame is appended to the
// job's frames file — across daemon lifetimes the file accumulates
// the complete trajectory, deduped by step.
func (s *Server) runWorkload(job *Job, ctx context.Context) (*Result, error) {
	spec := job.Spec
	var inj *fault.Injector
	if spec.Fault != "" {
		var perr error
		if inj, perr = fault.Parse(spec.Fault, spec.Seed); perr != nil {
			return nil, perr // unreachable: normalize validated it
		}
	}
	sup := &harness.Supervisor{
		Factory: func() (core.Config, *atom.Store, error) {
			cfg, st, err := workload.Build(workload.Name(spec.Workload), spec.options())
			cfg.ThermoTo = nil
			cfg.Workers = spec.Workers
			cfg.Fault = inj
			return cfg, st, err
		},
		Ranks:           spec.Ranks,
		KeepCheckpoints: spec.KeepCheckpoints,
		Retries:         spec.Retries,
		Fault:           inj,
	}
	if spec.CheckpointEvery > 0 {
		sup.CheckpointEvery = spec.CheckpointEvery
		sup.CheckpointPath = s.ckptPath(job)
		// Resume: a requeued job restores its newest generation that
		// verifies. Restoring keeps the checkpoint cadence (and so the
		// neighbor-rebuild schedule) identical to the uninterrupted run,
		// which is what makes the resumed trajectory bit-identical.
		if ck, gen, _, rerr := ckpt.ReadNewestValid(sup.CheckpointPath, spec.KeepCheckpoints); rerr == nil && ck.Ranks == spec.Ranks {
			sup.RestartPath = ckpt.GenerationPath(sup.CheckpointPath, gen)
			s.mu.Lock()
			job.detail = fmt.Sprintf("resumed from checkpoint at step %d", ck.Step)
			s.mu.Unlock()
		}
	}
	if err := sup.Start(); err != nil {
		return nil, err
	}
	defer sup.Close()

	// Reload frames persisted by previous daemon lifetimes: they seed
	// the SSE history and tell the loop which steps are already durable.
	frames := loadFrames(s.framesPath(job))
	var lastFrame int64 = -1
	for _, fr := range frames {
		data, _ := json.Marshal(fr)
		job.hub.publish(Event{Name: "thermo", Data: string(data)})
		if fr.Step > lastFrame {
			lastFrame = fr.Step
		}
	}
	ff, err := os.OpenFile(s.framesPath(job), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer ff.Close()

	start := time.Now()
	steps := int64(spec.Steps)
	target := steps
	runCtx := ctx
	drained := false
	var final *Frame
	if len(frames) > 0 {
		f := frames[len(frames)-1]
		final = &f
	}
	for {
		pos := sup.Step()
		s.mu.Lock()
		job.step = pos
		job.recoveries = sup.Attempts()
		s.mu.Unlock()
		if pos >= target {
			break
		}
		if s.hardCtx.Err() != nil {
			return nil, errHardKill
		}
		if ctx.Err() != nil && !drained {
			// Interrupted: a cancel stops here; a drain runs on to the next
			// checkpoint boundary so a fresh generation is durable before
			// the daemon exits.
			s.mu.Lock()
			cancelled := job.cancelled
			s.mu.Unlock()
			if cancelled || spec.CheckpointEvery <= 0 {
				return nil, ctx.Err()
			}
			drained = true
			runCtx = s.hardCtx
			every := int64(spec.CheckpointEvery)
			if b := ((pos + every - 1) / every) * every; b < target {
				target = b
			}
			if pos >= target {
				break
			}
		}
		chunk := int64(spec.ThermoEvery) - pos%int64(spec.ThermoEvery)
		if pos+chunk > target {
			chunk = target - pos
		}
		if err := sup.RunContext(runCtx, int(chunk)); err != nil {
			if runCtx.Err() != nil {
				continue // classify at the top of the loop
			}
			return nil, err
		}
		th, terr := sup.Thermo()
		if terr != nil {
			return nil, terr
		}
		if th.Step > lastFrame {
			fr := Frame{Step: th.Step, Temp: th.Temperature, Prs: th.Pressure,
				PE: th.PotEnergy, KE: th.KinEnergy, Etot: th.TotalEnergy}
			line, _ := json.Marshal(fr)
			if _, werr := ff.Write(append(line, '\n')); werr != nil {
				return nil, werr
			}
			job.hub.publish(Event{Name: "thermo", Data: string(line)})
			lastFrame = th.Step
			final = &fr
		}
		if s.Fault.KillDaemonAt(sup.Step()) {
			s.daemonKill()
			return nil, errHardKill
		}
	}
	s.mu.Lock()
	job.step = sup.Step()
	job.recoveries = sup.Attempts()
	s.mu.Unlock()
	if drained {
		return nil, errDrained
	}
	return &Result{
		Steps:      sup.Step(),
		Recoveries: sup.Attempts(),
		WallMillis: time.Since(start).Milliseconds(),
		Final:      final,
	}, nil
}

// daemonKill fires the kill-daemon drill: cmd/mdserve's hook exits the
// process (a real crash); in-process the hard context drops every job
// loop with no journal writes and Killed() observers wake.
func (s *Server) daemonKill() {
	if s.OnDaemonKill != nil {
		s.OnDaemonKill()
	}
	s.mu.Lock()
	select {
	case <-s.killed:
	default:
		close(s.killed)
	}
	s.mu.Unlock()
	s.hardStop()
}

// logWriter splits interpreter output into lines published as "log"
// SSE events while accumulating the full transcript. Safe for use
// after the job ended (the hub drops events once closed).
type logWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
	cur bytes.Buffer
	hub *hub
}

func (w *logWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, b := range p {
		if b == '\n' {
			data, _ := json.Marshal(w.cur.String())
			w.hub.publish(Event{Name: "log", Data: data2line(data)})
			w.cur.Reset()
			continue
		}
		w.cur.WriteByte(b)
	}
	return len(p), nil
}

// data2line wraps a JSON string into the {"line": ...} payload.
func data2line(data []byte) string { return `{"line":` + string(data) + `}` }

func (w *logWriter) output() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// runScript runs a script job through the LAMMPS-style interpreter.
// The interpreter is serial and has no checkpoint surface, so
// cancellation and drain detach from it (the goroutine finishes into a
// closed hub) and a daemon restart re-runs the script from scratch.
func (s *Server) runScript(job *Job, ctx context.Context) (*Result, error) {
	w := &logWriter{hub: job.hub}
	interp := script.New(w)
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- interp.Run(strings.NewReader(job.Spec.Script)) }()
	select {
	case err := <-done:
		if err != nil {
			return nil, err
		}
		res := &Result{WallMillis: time.Since(start).Milliseconds(), Output: w.output()}
		if sim := interp.Sim(); sim != nil {
			res.Steps = sim.Step
			th := sim.ComputeThermo()
			res.Final = &Frame{Step: th.Step, Temp: th.Temperature, Prs: th.Pressure,
				PE: th.PotEnergy, KE: th.KinEnergy, Etot: th.TotalEnergy}
		}
		return res, nil
	case <-ctx.Done():
		if s.hardCtx.Err() != nil {
			return nil, errHardKill
		}
		return nil, ctx.Err()
	}
}

// loadFrames reads a frames file tolerant of a torn tail (the file is
// append-only with no fsync; a crash can lose or tear the last line —
// the journal and checkpoints carry the durability contract, frames
// are the replayable stream).
func loadFrames(path string) []Frame {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []Frame
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			break
		}
		var fr Frame
		if json.Unmarshal(raw[:nl], &fr) != nil {
			break
		}
		out = append(out, fr)
		raw = raw[nl+1:]
	}
	return out
}
