package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"gomd/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST /api/v1/jobs             submit a JobSpec; 202 {"id": ...}
//	GET  /api/v1/jobs             list jobs
//	GET  /api/v1/jobs/{id}        one job's status
//	GET  /api/v1/jobs/{id}/result the result (409 until terminal)
//	POST /api/v1/jobs/{id}/cancel cancel queued/running
//	GET  /api/v1/jobs/{id}/events SSE stream (thermo/log/drain/done)
//	GET  /metrics, /metrics.json  OpenMetrics / JSON (when Metrics set)
//	GET  /healthz                 liveness + drain state
//
// Backpressure is expressed in status codes: 400 never-schedulable,
// 429 + Retry-After queue/tenant full, 503 draining.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, s.Jobs())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, 404, "no such job")
			return
		}
		writeJSON(w, 200, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	if s.Metrics != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(s.Metrics))
		mux.Handle("GET /metrics.json", obs.MetricsJSONHandler(s.Metrics))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]any{"status": "ok", "draining": s.Draining()})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, 400, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		var rej *rejection
		if errors.As(err, &rej) {
			if rej.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(rej.RetryAfter))
			}
			writeErr(w, rej.Code, rej.Reason)
			return
		}
		writeErr(w, 500, err.Error())
		return
	}
	writeJSON(w, 202, map[string]string{"id": id, "state": string(StateQueued)})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, state, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeErr(w, 404, "no such job")
		return
	}
	if !state.Terminal() {
		writeErr(w, 409, fmt.Sprintf("job is %s; result not ready", state))
		return
	}
	writeJSON(w, 200, map[string]any{"state": state, "result": res})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		var rej *rejection
		if errors.As(err, &rej) {
			writeErr(w, rej.Code, rej.Reason)
			return
		}
		writeErr(w, 500, err.Error())
		return
	}
	writeJSON(w, 200, map[string]string{"cancelling": r.PathValue("id")})
}

// handleEvents streams a job's events as SSE: the full history first
// (a late subscriber replays the run from frame one), then live events
// until the job ends or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	hist, live, ok := s.Events(id)
	if !ok {
		writeErr(w, 404, "no such job")
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		s.Unsubscribe(id, live)
		writeErr(w, 500, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	write := func(ev Event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
	}
	for _, ev := range hist {
		write(ev)
	}
	fl.Flush()
	if live == nil {
		return // stream already ended; history is complete
	}
	defer s.Unsubscribe(id, live)
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			write(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
