package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gomd/internal/ckpt"
	"gomd/internal/fault"
	"gomd/internal/obs"
)

func mustParseFault(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec, 1)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return inj
}

// e2eSpec is the small checkpointed 2-rank LJ job the end-to-end tests
// run: fast enough for the race detector, long enough to have several
// checkpoint generations and thermo frames.
func e2eSpec(steps int) JobSpec {
	return JobSpec{
		Tenant:          "t0",
		Workload:        "lj",
		Atoms:           500,
		Steps:           steps,
		Ranks:           2,
		Seed:            7,
		ThermoEvery:     10,
		CheckpointEvery: 20,
		Retries:         2,
	}
}

func startServer(t *testing.T, dir string, limits Limits, faultSpec string) *Server {
	t.Helper()
	s := &Server{DataDir: dir, Limits: limits}
	if faultSpec != "" {
		s.Fault = mustParseFault(t, faultSpec)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Server.Start: %v", err)
	}
	return s
}

func waitState(t *testing.T, s *Server, id string, want State, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if ok && st.State == want {
			return st
		}
		if ok && st.State.Terminal() && st.State != want {
			t.Fatalf("job %s reached %q (%s), want %q", id, st.State, st.Detail, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%s), want %q", id, st.State, st.Detail, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitStep waits for a running job to pass a step (so interruptions
// land mid-run, not before the first chunk).
func waitStep(t *testing.T, s *Server, id string, step int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if ok && st.Step >= step {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at step %d, want >= %d", id, st.Step, step)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// referenceFrames runs spec uninterrupted on a fresh server and
// returns its frame sequence — the bit-identity baseline.
func referenceFrames(t *testing.T, spec JobSpec) []Frame {
	t.Helper()
	dir := t.TempDir()
	s := startServer(t, dir, Limits{}, "")
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, id, StateDone, 60*time.Second)
	frames := loadFrames(filepath.Join(dir, id+".frames.jsonl"))
	if len(frames) == 0 {
		t.Fatal("reference run produced no frames")
	}
	s.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestServeCompletesJob is the basic service path: submit, run, done,
// result, frames on the thermo grid.
func TestServeCompletesJob(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, dir, Limits{}, "")
	spec := e2eSpec(40)
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, id, StateDone, 60*time.Second)
	if st.Step != 40 || st.Tenant != "t0" {
		t.Fatalf("done status %+v", st)
	}
	res, state, ok := s.Result(id)
	if !ok || state != StateDone || res == nil {
		t.Fatalf("Result: %v %v %v", res, state, ok)
	}
	if res.Steps != 40 || res.Final == nil || res.Final.Step != 40 {
		t.Fatalf("result %+v final %+v", res, res.Final)
	}
	frames := loadFrames(filepath.Join(dir, id+".frames.jsonl"))
	want := []int64{10, 20, 30, 40}
	var got []int64
	for _, fr := range frames {
		got = append(got, fr.Step)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frame steps %v, want %v", got, want)
	}
	s.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeCrashResumeBitIdentical is the kill-daemon drill: a
// checkpointed job survives a hard daemon death mid-run, and the
// restarted daemon resumes it from the newest checkpoint generation to
// a trajectory bit-identical to a run that was never interrupted.
func TestServeCrashResumeBitIdentical(t *testing.T) {
	spec := e2eSpec(60)
	ref := referenceFrames(t, spec)

	dir := t.TempDir()
	a := startServer(t, dir, Limits{}, "kill-daemon:step=30")
	id, err := a.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	select {
	case <-a.Killed():
	case <-time.After(60 * time.Second):
		t.Fatal("kill-daemon drill never fired")
	}
	a.Wait() // every job loop abandoned; no journal transitions after death
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// The dead daemon left a checkpoint generation and a running record.
	ck, _, _, err := ckpt.ReadNewestValid(filepath.Join(dir, id+".ckpt"), spec.KeepCheckpoints)
	if err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}
	if ck.Step < int64(spec.CheckpointEvery) {
		t.Fatalf("newest generation at step %d, want >= %d", ck.Step, spec.CheckpointEvery)
	}

	b := startServer(t, dir, Limits{}, "")
	st := waitState(t, b, id, StateDone, 60*time.Second)
	if !strings.Contains(st.Detail, "resumed from checkpoint") {
		t.Fatalf("restarted daemon did not resume from a checkpoint: %+v", st)
	}
	got := loadFrames(filepath.Join(dir, id+".frames.jsonl"))
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed trajectory diverged:\n got %+v\nwant %+v", got, ref)
	}
	res, _, _ := b.Result(id)
	if res == nil || res.Steps != 60 {
		t.Fatalf("result after resume: %+v", res)
	}
	b.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDrainParksAndResumes is the SIGTERM protocol: drain runs
// the job on to its next checkpoint boundary, parks it as running in
// the journal, and a fresh daemon resumes it bit-identically.
func TestServeDrainParksAndResumes(t *testing.T) {
	spec := e2eSpec(60)
	ref := referenceFrames(t, spec)

	dir := t.TempDir()
	a := startServer(t, dir, Limits{}, "")
	id, err := a.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStep(t, a, id, 10, 60*time.Second)
	if err := a.Drain(60 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, _ := a.Status(id)
	if st.State == StateDone {
		t.Skip("job finished before the drain landed; nothing to park")
	}
	if st.State != StateRunning || !strings.Contains(st.Detail, "parked by drain") {
		t.Fatalf("after drain: %+v", st)
	}
	if st.Step%int64(spec.CheckpointEvery) != 0 || st.Step == 0 {
		t.Fatalf("drain parked at step %d, not a checkpoint boundary", st.Step)
	}
	if _, err := a.Submit(spec); err == nil {
		t.Fatal("draining server accepted a submission")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b := startServer(t, dir, Limits{}, "")
	waitState(t, b, id, StateDone, 60*time.Second)
	got := loadFrames(filepath.Join(dir, id+".frames.jsonl"))
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("drained+resumed trajectory diverged:\n got %+v\nwant %+v", got, ref)
	}
	b.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeQuotasAndCancel exercises slot scheduling, queue
// backpressure, and both cancel paths against a live server.
func TestServeQuotasAndCancel(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, dir, Limits{SlotBudget: 2, MaxQueue: 2}, "")
	long := e2eSpec(4000)
	long.CheckpointEvery = 0
	runID, err := s.Submit(long) // 2 slots: fills the budget
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, runID, StateRunning, 30*time.Second)
	qID, err := s.Submit(long) // queue has room, no slots
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if st, _ := s.Status(qID); st.State != StateQueued {
		t.Fatalf("second job %+v, want queued behind the slot budget", st)
	}
	_, err = s.Submit(long) // queue full
	rej, ok := err.(*rejection)
	if !ok || rej.Code != 429 || rej.RetryAfter <= 0 {
		t.Fatalf("over-queue submission: %v", err)
	}
	big := e2eSpec(10)
	big.Ranks = 4 // 4 slots > budget: never schedulable
	if _, err := s.Submit(big); err == nil || err.(*rejection).Code != 400 {
		t.Fatalf("over-budget job: %v", err)
	}

	// Cancel the queued job: immediate. Cancel the running one: lands at
	// the next chunk boundary, freeing its slots.
	if err := s.Cancel(qID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st, _ := s.Status(qID); st.State != StateCancelled {
		t.Fatalf("queued cancel: %+v", st)
	}
	if err := s.Cancel(runID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, s, runID, StateCancelled, 30*time.Second)
	if err := s.Cancel(runID); err == nil {
		t.Fatal("cancelling a terminal job succeeded")
	}
	s.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeHTTPAPI drives the full HTTP surface: submit a script job,
// follow its SSE stream to the done event, fetch the result, and check
// the backpressure status codes on the wire.
func TestServeHTTPAPI(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, dir, Limits{MaxQueue: 1}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	script := `units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
fix 1 all nve
thermo 10
timestep 0.005
run 20
`
	body, _ := json.Marshal(JobSpec{Script: script, Tenant: "curl"})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("submit returned no id")
	}

	// SSE: the stream must replay history and end with a done event.
	sresp, err := http.Get(ts.URL + "/api/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	sawLog, sawDone := false, false
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: log" {
			sawLog = true
		}
		if line == "event: done" {
			sawDone = true
			break
		}
	}
	if !sawLog || !sawDone {
		t.Fatalf("SSE stream: log=%v done=%v", sawLog, sawDone)
	}

	waitState(t, s, sub.ID, StateDone, 60*time.Second)
	rresp, err := http.Get(ts.URL + "/api/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		State  State   `json:"state"`
		Result *Result `json:"result"`
	}
	json.NewDecoder(rresp.Body).Decode(&res)
	rresp.Body.Close()
	if rresp.StatusCode != 200 || res.State != StateDone || res.Result == nil ||
		res.Result.Steps != 20 || !strings.Contains(res.Result.Output, "step") {
		t.Fatalf("result: %d %+v", rresp.StatusCode, res)
	}

	// Status codes on the wire: bad spec 400, queue full 429+Retry-After.
	resp, _ = http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"nope","steps":5}`))
	if resp.StatusCode != 400 {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}
	resp.Body.Close()
	long, _ := json.Marshal(func() JobSpec { j := e2eSpec(4000); j.CheckpointEvery = 0; return j }())
	resp, _ = http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(long))
	if resp.StatusCode != 202 {
		t.Fatalf("long submit: %d", resp.StatusCode)
	}
	var lsub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&lsub)
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(long))
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("backpressure: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/api/v1/jobs/"+lsub.ID+"/cancel", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitState(t, s, lsub.ID, StateCancelled, 30*time.Second)

	resp, _ = http.Get(ts.URL + "/healthz")
	var hz struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz.Status != "ok" || hz.Draining {
		t.Fatalf("healthz: %+v", hz)
	}
	s.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRestartKeepsResults: terminal jobs survive a daemon restart
// with their results intact, and IDs keep counting upward.
func TestServeRestartKeepsResults(t *testing.T) {
	dir := t.TempDir()
	a := startServer(t, dir, Limits{}, "")
	spec := e2eSpec(20)
	id, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, id, StateDone, 60*time.Second)
	a.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b := startServer(t, dir, Limits{}, "")
	res, state, ok := b.Result(id)
	if !ok || state != StateDone || res == nil || res.Steps != 20 {
		t.Fatalf("result lost across restart: %v %v %v", res, state, ok)
	}
	id2, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted daemon reissued job ID %s", id)
	}
	waitState(t, b, id2, StateDone, 60*time.Second)
	b.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	s := &Server{DataDir: dir, Metrics: obs.NewRegistry()}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(e2eSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateDone, 60*time.Second)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_submitted", "serve_done"} {
		if !strings.Contains(raw, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, raw)
		}
	}
	s.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(r interface{ Read([]byte) (int, error) }) (string, error) {
	var b bytes.Buffer
	_, err := b.ReadFrom(bufio.NewReader(r))
	return b.String(), err
}
