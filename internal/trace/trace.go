// Package trace is the data log of the characterization framework (the
// "Data Log" stage of the paper's Figure 2): structured JSONL records of
// measurements and model evaluations, so experiment campaigns leave an
// auditable, machine-readable trail alongside the rendered tables.
package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Record is one logged event. Kind identifies the schema of Payload
// ("measurement", "cpu-outcome", "gpu-outcome", "note").
type Record struct {
	Seq     int64          `json:"seq"`
	Kind    string         `json:"kind"`
	Payload map[string]any `json:"payload"`
}

// Logger appends JSONL records to a writer; safe for concurrent use.
type Logger struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq int64
	err error
}

// New returns a Logger writing to w, or nil if w is nil (callers may
// invoke methods on a nil Logger; they become no-ops).
func New(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{enc: json.NewEncoder(w)}
}

// Log appends one record.
func (l *Logger) Log(kind string, payload map[string]any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	// Encoding errors never fail an experiment (the data log is an
	// auxiliary artifact), but the first one is retained so campaigns can
	// warn about an incomplete log at the end (see Err).
	if err := l.enc.Encode(Record{Seq: l.seq, Kind: kind, Payload: payload}); err != nil && l.err == nil {
		l.err = err
	}
}

// Err returns the first encoding error encountered, or nil (also on a
// nil Logger).
func (l *Logger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Measurement logs the engine-side facts of one measurement.
func (l *Logger) Measurement(workload string, ranks, nMeasured, nTarget, steps int) {
	l.Log("measurement", map[string]any{
		"workload":  workload,
		"ranks":     ranks,
		"nMeasured": nMeasured,
		"nTarget":   nTarget,
		"steps":     steps,
	})
}

// Outcome logs a model evaluation.
func (l *Logger) Outcome(instance, workload string, ranks int, tsps, powerW float64) {
	l.Log("outcome", map[string]any{
		"instance": instance,
		"workload": workload,
		"ranks":    ranks,
		"tsps":     tsps,
		"powerW":   powerW,
	})
}

// Read parses a JSONL stream back into records (analysis/tests).
func Read(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
