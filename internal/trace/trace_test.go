package trace_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"gomd/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := trace.New(&buf)
	l.Measurement("lj", 8, 4000, 32000, 15)
	l.Outcome("cpu", "lj", 8, 123.4, 250)
	l.Log("note", map[string]any{"msg": "hello"})

	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records %d", len(recs))
	}
	if recs[0].Kind != "measurement" || recs[0].Seq != 1 {
		t.Errorf("rec0 %+v", recs[0])
	}
	if recs[1].Payload["tsps"].(float64) != 123.4 {
		t.Errorf("outcome payload %+v", recs[1].Payload)
	}
	if recs[2].Payload["msg"] != "hello" {
		t.Errorf("note payload %+v", recs[2].Payload)
	}
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *trace.Logger
	l.Log("x", nil) // must not panic
	l.Measurement("lj", 1, 1, 1, 1)
	l.Outcome("cpu", "lj", 1, 1, 1)
}

func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	l := trace.New(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Log("note", map[string]any{"j": j})
			}
		}()
	}
	wg.Wait()
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(recs) != 800 {
		t.Errorf("records %d", len(recs))
	}
	// Sequence numbers unique.
	seen := map[int64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("{bad json")); err == nil {
		t.Error("garbage accepted")
	}
}
