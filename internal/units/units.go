// Package units defines the unit systems used by gomd workloads, mirroring
// the LAMMPS "units" command styles that the paper's benchmark suite uses:
// "lj" (reduced units: LJ, Chain, Chute), "metal" (Angstrom/eV/ps: EAM),
// and "real" (Angstrom/kcal-mol/fs: Rhodopsin).
//
// Only the constants the engine needs are carried: the Boltzmann constant,
// the MV²-to-energy conversion for kinetic energy, Coulomb's constant for
// electrostatics, and the default timestep for each style.
package units

import "fmt"

// Style identifies a unit system.
type Style int

const (
	// LJ is the reduced Lennard-Jones unit system: all quantities are
	// dimensionless; sigma, epsilon, and mass are 1 by convention.
	LJ Style = iota
	// Metal uses Angstroms, picoseconds, eV, and atomic mass units.
	Metal
	// Real uses Angstroms, femtoseconds, kcal/mol, and atomic mass units.
	Real
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case LJ:
		return "lj"
	case Metal:
		return "metal"
	case Real:
		return "real"
	default:
		return fmt.Sprintf("units.Style(%d)", int(s))
	}
}

// System carries the physical constants of one unit style.
type System struct {
	Style Style
	// Boltz is the Boltzmann constant in this system's energy/temperature
	// units.
	Boltz float64
	// MVV2E converts mass*velocity^2 to energy units.
	MVV2E float64
	// QQr2E converts charge*charge/distance to energy units (Coulomb
	// prefactor).
	QQr2E float64
	// FTM2V converts force/mass*time to velocity units.
	FTM2V float64
	// NVE timestep conventionally used with this style by the paper's
	// benchmarks (LAMMPS bench defaults).
	DefaultDt float64
}

// ForStyle returns the constant set of the given style. Constants follow
// the LAMMPS update.cpp definitions.
func ForStyle(s Style) System {
	switch s {
	case LJ:
		return System{Style: LJ, Boltz: 1, MVV2E: 1, QQr2E: 1, FTM2V: 1, DefaultDt: 0.005}
	case Metal:
		return System{
			Style:     Metal,
			Boltz:     8.617343e-5,  // eV/K
			MVV2E:     1.0364269e-4, // amu*(A/ps)^2 -> eV
			QQr2E:     14.399645,    // e^2/A -> eV
			FTM2V:     1 / 1.0364269e-4,
			DefaultDt: 0.001, // ps
		}
	case Real:
		return System{
			Style:     Real,
			Boltz:     0.0019872067,              // kcal/mol/K
			MVV2E:     48.88821291 * 48.88821291, // amu*(A/fs)^2 -> kcal/mol
			QQr2E:     332.06371,                 // e^2/A -> kcal/mol
			FTM2V:     1 / (48.88821291 * 48.88821291),
			DefaultDt: 2.0, // fs (rhodopsin bench uses 2 fs with SHAKE)
		}
	default:
		panic("units: unknown style")
	}
}
