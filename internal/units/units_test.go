package units_test

import (
	"math"
	"testing"

	"gomd/internal/units"
)

func TestStyleStrings(t *testing.T) {
	if units.LJ.String() != "lj" || units.Metal.String() != "metal" || units.Real.String() != "real" {
		t.Error("style names")
	}
}

func TestLJIsReduced(t *testing.T) {
	u := units.ForStyle(units.LJ)
	if u.Boltz != 1 || u.MVV2E != 1 || u.QQr2E != 1 || u.FTM2V != 1 {
		t.Errorf("lj units not reduced: %+v", u)
	}
}

// TestMetalConsistency: kinetic energy of one Cu atom at its thermal
// velocity should match (3/2) kB T.
func TestMetalConsistency(t *testing.T) {
	u := units.ForStyle(units.Metal)
	T := 300.0
	m := 63.55
	v2 := 3 * u.Boltz * T / (u.MVV2E * m) // (A/ps)^2
	ke := 0.5 * u.MVV2E * m * v2
	want := 1.5 * u.Boltz * T
	if math.Abs(ke-want) > 1e-15 {
		t.Errorf("metal KE %v want %v", ke, want)
	}
	// Thermal speed of Cu at 300 K is ~3.3 A/ps.
	if v := math.Sqrt(v2); v < 2 || v > 5 {
		t.Errorf("Cu thermal speed %v A/ps implausible", v)
	}
}

// TestRealConsistency: thermal speed of O at 300 K ~ 0.0068 A/fs, and
// FTM2V inverts MVV2E.
func TestRealConsistency(t *testing.T) {
	u := units.ForStyle(units.Real)
	if math.Abs(u.MVV2E*u.FTM2V-1) > 1e-12 {
		t.Errorf("MVV2E * FTM2V = %v", u.MVV2E*u.FTM2V)
	}
	v := math.Sqrt(3 * u.Boltz * 300 / (u.MVV2E * 15.9994))
	if v < 0.004 || v > 0.01 {
		t.Errorf("O thermal speed %v A/fs implausible", v)
	}
	// Coulomb energy of two unit charges 1 A apart ~ 332 kcal/mol.
	if math.Abs(u.QQr2E-332.06371) > 1e-6 {
		t.Errorf("QQr2E %v", u.QQr2E)
	}
}

func TestDefaultTimesteps(t *testing.T) {
	if units.ForStyle(units.LJ).DefaultDt != 0.005 {
		t.Error("lj dt")
	}
	if units.ForStyle(units.Real).DefaultDt != 2.0 {
		t.Error("real dt")
	}
	if units.ForStyle(units.Metal).DefaultDt != 0.001 {
		t.Error("metal dt")
	}
}
