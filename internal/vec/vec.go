// Package vec provides the 3-component vector arithmetic used throughout
// the gomd engine. Vectors are small value types; all operations return new
// values so they can be freely composed inside force kernels.
package vec

import "math"

// V3 is a 3-component double-precision vector.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Splat returns the vector (s, s, s).
func Splat(s float64) V3 { return V3{s, s, s} }

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Mul returns the component-wise product of v and w.
func (v V3) Mul(w V3) V3 { return V3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Div returns the component-wise quotient v / w.
func (v V3) Div(w V3) V3 { return V3{v.X / w.X, v.Y / w.Y, v.Z / w.Z} }

// Dot returns the inner product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns the squared Euclidean norm of v.
func (v V3) Norm2() float64 { return v.Dot(v) }

// Norm returns the Euclidean norm of v.
func (v V3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v V3) Normalized() V3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// MaxComponent returns the largest component of v.
func (v V3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// MinComponent returns the smallest component of v.
func (v V3) MinComponent() float64 {
	return math.Min(v.X, math.Min(v.Y, v.Z))
}

// Abs returns the component-wise absolute value of v.
func (v V3) Abs() V3 {
	return V3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Volume returns the product of the components, i.e. the volume of the
// axis-aligned block with diagonal v.
func (v V3) Volume() float64 { return v.X * v.Y * v.Z }

// Component returns the i-th component (0=X, 1=Y, 2=Z).
func (v V3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// WithComponent returns a copy of v with the i-th component set to s.
func (v V3) WithComponent(i int, s float64) V3 {
	switch i {
	case 0:
		v.X = s
	case 1:
		v.Y = s
	default:
		v.Z = s
	}
	return v
}
