package vec_test

import (
	"math"
	"testing"
	"testing/quick"

	"gomd/internal/vec"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b))
}

func finite(vs ...vec.V3) bool {
	for _, v := range vs {
		for _, c := range []float64{v.X, v.Y, v.Z} {
			if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e100 {
				return false
			}
		}
	}
	return true
}

func TestBasicOps(t *testing.T) {
	a := vec.New(1, 2, 3)
	b := vec.New(-4, 5, 0.5)
	if got := a.Add(b); got != vec.New(-3, 7, 3.5) {
		t.Errorf("Add: %v", got)
	}
	if got := a.Sub(b); got != vec.New(5, -3, 2.5) {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Scale(2); got != vec.New(2, 4, 6) {
		t.Errorf("Scale: %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot: %v", got)
	}
	if got := a.Neg(); got != vec.New(-1, -2, -3) {
		t.Errorf("Neg: %v", got)
	}
}

func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := vec.New(ax, ay, az)
		b := vec.New(bx, by, bz)
		if !finite(a, b) {
			return true
		}
		c := a.Cross(b)
		// Orthogonality (up to FP noise scaled by magnitudes).
		scale := (1 + a.Norm()) * (1 + b.Norm()) * (1 + c.Norm())
		return math.Abs(c.Dot(a)) <= 1e-9*scale && math.Abs(c.Dot(b)) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossAnticommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := vec.New(ax, ay, az)
		b := vec.New(bx, by, bz)
		if !finite(a, b) {
			return true
		}
		return a.Cross(b) == b.Cross(a).Neg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalized(t *testing.T) {
	v := vec.New(3, 4, 0).Normalized()
	if !almost(v.Norm(), 1) {
		t.Errorf("unit norm: %v", v.Norm())
	}
	zero := vec.V3{}.Normalized()
	if zero != (vec.V3{}) {
		t.Errorf("zero vector must stay zero: %v", zero)
	}
}

func TestNormAgainstDot(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := vec.New(x, y, z)
		if !finite(v) {
			return true
		}
		return almost(v.Norm2(), v.Dot(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentRoundTrip(t *testing.T) {
	v := vec.New(7, 8, 9)
	for d := 0; d < 3; d++ {
		if got := v.WithComponent(d, -1).Component(d); got != -1 {
			t.Errorf("dim %d: %v", d, got)
		}
	}
	if v.Component(0) != 7 || v.Component(1) != 8 || v.Component(2) != 9 {
		t.Errorf("component read: %v", v)
	}
}

func TestMinMaxAbsVolume(t *testing.T) {
	v := vec.New(-2, 5, 1)
	if v.MaxComponent() != 5 || v.MinComponent() != -2 {
		t.Errorf("min/max: %v %v", v.MaxComponent(), v.MinComponent())
	}
	if v.Abs() != vec.New(2, 5, 1) {
		t.Errorf("abs: %v", v.Abs())
	}
	if v.Volume() != -10 {
		t.Errorf("volume: %v", v.Volume())
	}
}

func TestMulDiv(t *testing.T) {
	a := vec.New(2, 6, -4)
	b := vec.New(2, 3, 4)
	if a.Mul(b) != vec.New(4, 18, -16) {
		t.Errorf("mul: %v", a.Mul(b))
	}
	if a.Div(b) != vec.New(1, 2, -1) {
		t.Errorf("div: %v", a.Div(b))
	}
}
