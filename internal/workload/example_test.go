package workload_test

import (
	"fmt"

	"gomd/internal/core"
	"gomd/internal/workload"
)

// Example shows the minimal path from a benchmark name to a running
// simulation.
func Example() {
	cfg, atoms, err := workload.Build(workload.LJ, workload.Options{Atoms: 500, Seed: 1})
	if err != nil {
		panic(err)
	}
	sim := core.New(cfg, atoms)
	sim.Run(10)
	fmt.Println(atoms.N, "atoms advanced to step", sim.Step)
	// Output: 500 atoms advanced to step 10
}

// ExampleDescribe prints a Table 2 row.
func ExampleDescribe() {
	d := workload.Describe(workload.Chute)
	fmt.Println(d.ForceField, d.Integration, d.GPUSupported)
	// Output: gran/hooke/history NVE false
}
