package workload

import (
	"math"

	"gomd/internal/atom"
	"gomd/internal/bond"
	"gomd/internal/box"
	"gomd/internal/core"
	"gomd/internal/fix"
	"gomd/internal/kspace"
	"gomd/internal/lattice"
	"gomd/internal/pair"
	"gomd/internal/rng"
	"gomd/internal/units"
	"gomd/internal/vec"
)

// buildRhodo realizes the Rhodopsin surrogate workload.
//
// The paper's rhodopsin benchmark is an all-atom solvated protein in a
// lipid bilayer; its input topology is not reproducible from first
// principles. Following the substitution rule (DESIGN.md), we build a
// dense charged molecular system with the same workload signature as
// Table 2's rhodo row: CHARMM-style pairwise field with arithmetic
// mixing, 8-10 A switched LJ cutoff, 2 A skin, ~440 neighbors/atom at
// liquid-water density, PPPM long-range electrostatics at a configurable
// relative error (default 1e-4), SHAKE-constrained hydrogens, harmonic
// bonded terms, and NPT (Nose-Hoover) integration in real units.
//
// Concretely, the system is SPC/E-like 3-site water: it exercises every
// task class of the rhodopsin run (Pair, Bond, Kspace, Neigh, Comm,
// Modify with SHAKE+NPT) with per-atom costs of the same order.
func buildRhodo(o Options) (core.Config, *atom.Store, error) {
	u := units.ForStyle(units.Real)
	accuracy := o.KspaceAccuracy
	if accuracy == 0 {
		accuracy = 1e-4
	}

	nmol := o.Atoms / 3
	side := int(math.Ceil(math.Cbrt(float64(nmol))))
	nmol = side * side * side
	n := 3 * nmol

	// Liquid-water number density, slightly relaxed so the lattice start
	// is not over-pressurized; NPT takes it the rest of the way.
	molDensity := 0.0334 * 0.92
	l := math.Cbrt(float64(nmol) / molDensity)
	bx := box.NewPeriodic(vec.V3{}, vec.Splat(l))
	spacing := l / float64(side)

	const (
		massO = 15.9994
		massH = 1.008
		qO    = -0.8476
		qH    = 0.4238
		rOH   = 1.0
		theta = 109.47 * math.Pi / 180
	)
	dHH := 2 * rOH * math.Sin(theta/2)

	st := atom.New(n)
	r := rng.New(o.Seed + 3)
	for m := 0; m < nmol; m++ {
		ix := m % side
		iy := (m / side) % side
		iz := m / (side * side)
		o3 := vec.New(
			(float64(ix)+0.5)*spacing,
			(float64(iy)+0.5)*spacing,
			(float64(iz)+0.5)*spacing,
		)
		// Common orientation with a small random tilt keeps neighboring
		// hydrogens from spawning inside each other at liquid density.
		tilt := vec.New(r.Range(-0.1, 0.1), r.Range(-0.1, 0.1), r.Range(-0.1, 0.1))
		bis := vec.New(1, 0, 0).Add(tilt).Normalized()
		perp := vec.New(0, 1, 0).Add(tilt.Cross(bis)).Normalized()
		h1 := o3.Add(bis.Scale(rOH * math.Cos(theta/2))).Add(perp.Scale(rOH * math.Sin(theta/2)))
		h2 := o3.Add(bis.Scale(rOH * math.Cos(theta/2))).Sub(perp.Scale(rOH * math.Sin(theta/2)))

		tO := int64(3*m + 1)
		tH1 := int64(3*m + 2)
		tH2 := int64(3*m + 3)
		molID := int32(m + 1)

		st.Add(atom.Atom{
			Tag: tO, Type: 1, Mol: molID, Pos: o3, Charge: qO,
			Bonds:  []atom.BondRef{{Type: 1, Partner: tH1}, {Type: 1, Partner: tH2}},
			Angles: []atom.AngleRef{{Type: 1, A: tH1, C: tH2}},
			Special: []atom.SpecialRef{
				{Tag: tH1, Kind: atom.Special12},
				{Tag: tH2, Kind: atom.Special12},
			},
		})
		st.Add(atom.Atom{
			Tag: tH1, Type: 2, Mol: molID, Pos: h1, Charge: qH,
			Special: []atom.SpecialRef{
				{Tag: tO, Kind: atom.Special12},
				{Tag: tH2, Kind: atom.Special13},
			},
		})
		st.Add(atom.Atom{
			Tag: tH2, Type: 2, Mol: molID, Pos: h2, Charge: qH,
			Special: []atom.SpecialRef{
				{Tag: tO, Kind: atom.Special12},
				{Tag: tH1, Kind: atom.Special13},
			},
		})
	}

	// Initial velocities at 300 K.
	masses := make([]float64, st.N)
	for i := 0; i < st.N; i++ {
		if st.Type[i] == 1 {
			masses[i] = massO
		} else {
			masses[i] = massH
		}
	}
	vel := lattice.MaxwellVelocities(rng.New(o.Seed+4), masses, 300, u.Boltz, u.MVV2E)
	copy(st.Vel, vel)

	shake := fix.NewShake()
	shake.BondDist[1] = rOH
	shake.AngleDist[1] = dHH

	cfg := core.Config{
		Name:  string(Rhodo),
		Units: u,
		Box:   bx,
		Mass:  []float64{massO, massH},
		Pair: pair.NewCharmm(
			[]float64{0.1553, 0.0},
			[]float64{3.166, 1.0},
			8.0, 10.0, o.Precision,
		),
		Bonds: []bond.Style{
			&bond.Harmonic{K: 450, R0: rOH},
			&bond.HarmonicAngle{K: 55, Theta0: theta},
		},
		Kspace: kspace.NewPPPM(accuracy, 10.0),
		Fixes: []fix.Fix{
			&fix.NPT{
				TStart: 300, TStop: 300, TDamp: 100,
				PTarget: 0, PDamp: 1000,
			},
			shake,
		},
		Dt:   2.0, // fs, as in the rhodopsin bench (with SHAKE)
		Skin: 2.0,
		// The LAMMPS rhodo bench uses neigh_modify "delay 5 every 1".
		NeighDelay:     5,
		ClusterMigrate: true,
		Seed:           o.Seed,
		ThermoEvery:    o.ThermoEvery,
	}
	return cfg, st, nil
}
