package workload_test

import (
	"math"
	"testing"

	"gomd/internal/core"
	"gomd/internal/workload"
)

// TestRhodoSerialStability runs the rhodopsin surrogate long enough to
// cross several neighbor rebuilds and checks that SHAKE keeps the rigid
// geometry, the thermostat keeps the temperature bounded, and no
// numerical explosion occurs.
func TestRhodoSerialStability(t *testing.T) {
	if testing.Short() {
		t.Skip("rhodo stability run is slow")
	}
	cfg, st := workload.MustBuild(workload.Rhodo, workload.Options{Atoms: 1500})
	s := core.New(cfg, st)
	s.Run(50)
	th := s.ComputeThermo()
	t.Logf("rhodo after 50 steps: T=%.1f K P=%.4g PE/atom=%.3f", th.Temperature, th.Pressure, th.PotEnergy/float64(st.N))
	if math.IsNaN(th.TotalEnergy) || math.IsInf(th.TotalEnergy, 0) {
		t.Fatal("rhodo surrogate exploded (NaN energy)")
	}
	if th.Temperature <= 0 || th.Temperature > 3000 {
		t.Errorf("temperature out of control: %g K", th.Temperature)
	}

	// SHAKE constraint satisfaction: every O-H distance at 1.0 A, every
	// H-H at 1.633 A, within tolerance.
	var worstOH, worstHH float64
	for i := 0; i < st.N; i++ {
		for _, b := range st.Bonds[i] {
			j := st.MustLookup(b.Partner)
			d := cfg.Box.MinImage(st.Pos[i].Sub(st.Pos[j])).Norm()
			if e := math.Abs(d - 1.0); e > worstOH {
				worstOH = e
			}
		}
		for _, a := range st.Angles[i] {
			ja := st.MustLookup(a.A)
			jc := st.MustLookup(a.C)
			d := cfg.Box.MinImage(st.Pos[ja].Sub(st.Pos[jc])).Norm()
			if e := math.Abs(d - 2*math.Sin(109.47*math.Pi/360)); e > worstHH {
				worstHH = e
			}
		}
	}
	t.Logf("constraint residuals: OH %g, HH %g", worstOH, worstHH)
	if worstOH > 1e-3 || worstHH > 1e-3 {
		t.Errorf("SHAKE constraints violated: OH=%g HH=%g", worstOH, worstHH)
	}
}
