package workload

import (
	"math"

	"gomd/internal/atom"
	"gomd/internal/bond"
	"gomd/internal/box"
	"gomd/internal/core"
	"gomd/internal/fix"
	"gomd/internal/lattice"
	"gomd/internal/pair"
	"gomd/internal/rng"
	"gomd/internal/units"
	"gomd/internal/vec"
)

// buildLJ realizes the LJ melt benchmark: fcc lattice at reduced density
// 0.8442, T* = 1.44, lj/cut at 2.5 sigma, NVE.
func buildLJ(o Options) (core.Config, *atom.Store, error) {
	u := units.ForStyle(units.LJ)
	cells := lattice.CubeCells(lattice.FCC, o.Atoms)
	a := lattice.CubicForDensity(lattice.FCC, 0.8442)
	pos := lattice.Generate(lattice.FCC, a, cells, cells, cells, vec.V3{})
	l := a * float64(cells)
	bx := box.NewPeriodic(vec.V3{}, vec.Splat(l))

	st := atom.New(len(pos))
	masses := make([]float64, len(pos))
	for i := range masses {
		masses[i] = 1
	}
	vel := lattice.MaxwellVelocities(rng.New(o.Seed), masses, 1.44, u.Boltz, u.MVV2E)
	for i, p := range pos {
		st.Add(atom.Atom{Tag: int64(i + 1), Type: 1, Pos: p, Vel: vel[i]})
	}

	cfg := core.Config{
		Name:  string(LJ),
		Units: u,
		Box:   bx,
		Mass:  []float64{1},
		Pair:  pair.NewLJCut(1, 1, 2.5, o.Precision),
		Fixes: []fix.Fix{&fix.NVE{}},
		Dt:    0.005,
		Skin:  0.3,
		// The LAMMPS lj bench uses neigh_modify "every 20 check no".
		NeighEvery:   20,
		NeighNoCheck: true,
		Seed:         o.Seed,
		ThermoEvery:  o.ThermoEvery,
	}
	return cfg, st, nil
}

// buildChain realizes the Chain benchmark: a bead-spring polymer melt of
// 100-mer FENE chains at density 0.8442 with a Langevin thermostat, as in
// the LAMMPS chain bench (special_bonds fene: 1-2 pairs excluded from the
// pair potential).
func buildChain(o Options) (core.Config, *atom.Store, error) {
	u := units.ForStyle(units.LJ)
	monomers := 100
	chains := (o.Atoms + monomers - 1) / monomers
	pos, mol, bx := lattice.BuildChains(lattice.ChainSpec{
		Chains:   chains,
		Monomers: monomers,
		Density:  0.8442,
		Seed:     o.Seed,
	})

	n := len(pos)
	st := atom.New(n)
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = 1
	}
	vel := lattice.MaxwellVelocities(rng.New(o.Seed+1), masses, 1.0, u.Boltz, u.MVV2E)
	for i, p := range pos {
		a := atom.Atom{Tag: int64(i + 1), Type: 1, Mol: mol[i], Pos: p, Vel: vel[i]}
		// Consecutive beads of a chain are FENE-bonded; the bond is owned
		// by the lower tag, and both ends record the 1-2 exclusion.
		inChain := (i % monomers)
		if inChain < monomers-1 {
			a.Bonds = []atom.BondRef{{Type: 1, Partner: int64(i + 2)}}
			a.Special = append(a.Special, atom.SpecialRef{Tag: int64(i + 2), Kind: atom.Special12})
		}
		if inChain > 0 {
			a.Special = append(a.Special, atom.SpecialRef{Tag: int64(i), Kind: atom.Special12})
		}
		st.Add(a)
	}

	// WCA pair interaction: LJ cut at 2^(1/6) sigma.
	wca := pair.NewLJCut(1, 1, math.Pow(2, 1.0/6), o.Precision)
	wca.Shift = true
	cfg := core.Config{
		Name:  string(Chain),
		Units: u,
		Box:   bx,
		Mass:  []float64{1},
		Pair:  wca,
		Bonds: []bond.Style{bond.NewFENEChain()},
		Fixes: []fix.Fix{
			// The LAMMPS chain bench integrates a pre-equilibrated melt
			// with plain NVE; our from-scratch random-walk start needs
			// the displacement cap until overlaps relax (inert after).
			&fix.NVELimit{MaxDisp: 0.1},
			&fix.Langevin{T: 1.0, Damp: 10.0},
		},
		Dt:   0.005,
		Skin: 0.4,
		// FENE bonds stretch toward R0 = 1.5 sigma, beyond the WCA pair
		// range; halos must cover bond partners.
		GhostCutoff: 1.9,
		Seed:        o.Seed,
		ThermoEvery: o.ThermoEvery,
	}
	return cfg, st, nil
}

// buildEAM realizes the EAM benchmark: fcc copper (a = 3.615 A) with the
// Sutton-Chen analytic EAM at the 4.95 A cutoff, initialized at 1600 K
// like the LAMMPS eam bench, NVE in metal units.
func buildEAM(o Options) (core.Config, *atom.Store, error) {
	u := units.ForStyle(units.Metal)
	cells := lattice.CubeCells(lattice.FCC, o.Atoms)
	a := 3.615
	pos := lattice.Generate(lattice.FCC, a, cells, cells, cells, vec.V3{})
	l := a * float64(cells)
	bx := box.NewPeriodic(vec.V3{}, vec.Splat(l))

	massCu := 63.55
	st := atom.New(len(pos))
	masses := make([]float64, len(pos))
	for i := range masses {
		masses[i] = massCu
	}
	vel := lattice.MaxwellVelocities(rng.New(o.Seed+2), masses, 1600, u.Boltz, u.MVV2E)
	for i, p := range pos {
		st.Add(atom.Atom{Tag: int64(i + 1), Type: 1, Pos: p, Vel: vel[i]})
	}

	cfg := core.Config{
		Name:  string(EAM),
		Units: u,
		Box:   bx,
		Mass:  []float64{massCu},
		Pair:  pair.NewEAMCopper(o.Precision),
		Fixes: []fix.Fix{&fix.NVE{}},
		Dt:    0.005, // ps; eam bench uses 5 fs
		Skin:  1.0,
		// The LAMMPS eam bench uses neigh_modify "delay 5 every 1".
		NeighDelay:  5,
		Seed:        o.Seed,
		ThermoEvery: o.ThermoEvery,
	}
	return cfg, st, nil
}

// buildChute realizes the Chute granular benchmark: a packed bed of unit
// grains on a frictional floor, tilted gravity (26 degrees), Hookean
// contact with tangential history, NVE. The pair style uses full neighbor
// lists (no Newton's third law), as the paper emphasizes.
func buildChute(o Options) (core.Config, *atom.Store, error) {
	u := units.ForStyle(units.LJ)
	pos, bx := lattice.GranularPack(o.Atoms, 1.0, o.Seed)

	st := atom.New(len(pos))
	for i, p := range pos {
		st.Add(atom.Atom{Tag: int64(i + 1), Type: 1, Pos: p})
	}

	cfg := core.Config{
		Name:  string(Chute),
		Units: u,
		Box:   bx,
		Mass:  []float64{1},
		Pair:  pair.NewGranChute(),
		Fixes: []fix.Fix{
			&fix.NVE{},
			&fix.Gravity{Mag: 1, Angle: 26},
			fix.NewWallGranChute(),
		},
		Dt:          0.0001,
		Skin:        0.1,
		Seed:        o.Seed,
		ThermoEvery: o.ThermoEvery,
	}
	return cfg, st, nil
}
