// Package workload constructs the five benchmark experiments of the
// paper's suite (§3, Table 2): Rhodopsin (surrogate), LJ, Chain, EAM, and
// Chute, parameterized by atom count so the characterization harness can
// sweep the paper's four system sizes (32k, 256k, 864k, 2048k atoms).
package workload

import (
	"fmt"

	"gomd/internal/atom"
	"gomd/internal/core"
	"gomd/internal/pair"
)

// Name identifies a benchmark.
type Name string

// The benchmark suite.
const (
	Rhodo Name = "rhodo"
	LJ    Name = "lj"
	Chain Name = "chain"
	EAM   Name = "eam"
	Chute Name = "chute"
)

// All lists the suite in the paper's Table 2 order.
func All() []Name { return []Name{Rhodo, LJ, Chain, EAM, Chute} }

// Sizes lists the paper's four system sizes in thousands of atoms.
func Sizes() []int { return []int{32, 256, 864, 2048} }

// Descriptor carries the Table 2 taxonomy entries for one benchmark.
type Descriptor struct {
	Name         Name
	ForceField   string
	Cutoff       string // with units, as printed in Table 2
	NeighborSkin string
	NeighPerAtom int // the paper's reported neighbors/atom
	PairModify   string
	KspaceStyle  string
	KspaceError  float64
	Integration  string
	GPUSupported bool // chute's gran/hooke pair style has no GPU kernel
	MinAtoms     int
}

// Describe returns the taxonomy of benchmark n.
func Describe(n Name) Descriptor {
	switch n {
	case Rhodo:
		return Descriptor{
			Name: Rhodo, ForceField: "CHARMM", Cutoff: "8.0-10.0 A",
			NeighborSkin: "2.0 A", NeighPerAtom: 440,
			PairModify: "mix arithmetic", KspaceStyle: "pppm",
			KspaceError: 1e-4, Integration: "NPT",
			GPUSupported: true, MinAtoms: 32000,
		}
	case LJ:
		return Descriptor{
			Name: LJ, ForceField: "lj", Cutoff: "2.5 sigma",
			NeighborSkin: "0.3 sigma", NeighPerAtom: 55,
			Integration: "NVE", GPUSupported: true, MinAtoms: 32000,
		}
	case Chain:
		return Descriptor{
			Name: Chain, ForceField: "lj", Cutoff: "1.12 sigma",
			NeighborSkin: "0.4 sigma", NeighPerAtom: 5,
			Integration: "NVE", GPUSupported: true, MinAtoms: 32000,
		}
	case EAM:
		return Descriptor{
			Name: EAM, ForceField: "EAM", Cutoff: "4.95 A",
			NeighborSkin: "1.0 A", NeighPerAtom: 45,
			Integration: "NVE", GPUSupported: true, MinAtoms: 32000,
		}
	case Chute:
		return Descriptor{
			Name: Chute, ForceField: "gran/hooke/history", Cutoff: "1.0 sigma",
			NeighborSkin: "0.1 sigma", NeighPerAtom: 7,
			Integration: "NVE", GPUSupported: false, MinAtoms: 32000,
		}
	default:
		panic(fmt.Sprintf("workload: unknown benchmark %q", n))
	}
}

// Options parameterize a workload build.
type Options struct {
	// Atoms is the requested atom count; builders round to the nearest
	// realizable count (lattice cells, whole molecules/chains).
	Atoms int
	// Precision selects the pairwise arithmetic (§8 study).
	Precision pair.Precision
	// KspaceAccuracy overrides the rhodopsin PPPM relative error
	// threshold (§7 study); 0 means the Table 2 default of 1e-4.
	KspaceAccuracy float64
	Seed           uint64
	ThermoEvery    int
}

// Build constructs the benchmark as a ready-to-wire configuration and
// populated atom store. The caller chooses the execution backend (serial
// core.New or a decomposed domain.New).
func Build(n Name, o Options) (core.Config, *atom.Store, error) {
	if o.Atoms == 0 {
		o.Atoms = 32000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	switch n {
	case LJ:
		return buildLJ(o)
	case Chain:
		return buildChain(o)
	case EAM:
		return buildEAM(o)
	case Chute:
		return buildChute(o)
	case Rhodo:
		return buildRhodo(o)
	default:
		return core.Config{}, nil, fmt.Errorf("workload: unknown benchmark %q", n)
	}
}

// MustBuild is Build that panics on error; used by tests and benches.
func MustBuild(n Name, o Options) (core.Config, *atom.Store) {
	cfg, st, err := Build(n, o)
	if err != nil {
		panic(err)
	}
	return cfg, st
}
