package workload_test

import (
	"math"
	"testing"

	"gomd/internal/compute"
	"gomd/internal/core"
	"gomd/internal/units"
	"gomd/internal/workload"
)

func TestSuiteRoster(t *testing.T) {
	all := workload.All()
	if len(all) != 5 {
		t.Fatalf("suite size %d", len(all))
	}
	want := []workload.Name{workload.Rhodo, workload.LJ, workload.Chain, workload.EAM, workload.Chute}
	for i, n := range want {
		if all[i] != n {
			t.Errorf("suite[%d] = %v want %v", i, all[i], n)
		}
	}
	if s := workload.Sizes(); len(s) != 4 || s[0] != 32 || s[3] != 2048 {
		t.Errorf("sizes %v", s)
	}
}

func TestDescriptorsMatchPaperTable2(t *testing.T) {
	d := workload.Describe(workload.Rhodo)
	if d.NeighPerAtom != 440 || d.KspaceStyle != "pppm" || d.KspaceError != 1e-4 ||
		d.Integration != "NPT" || d.PairModify != "mix arithmetic" {
		t.Errorf("rhodo descriptor: %+v", d)
	}
	if !workload.Describe(workload.LJ).GPUSupported {
		t.Error("lj must be GPU-supported")
	}
	if workload.Describe(workload.Chute).GPUSupported {
		t.Error("chute must not be GPU-supported (gran/hooke has no kernel)")
	}
	for _, n := range workload.All() {
		if workload.Describe(n).MinAtoms != 32000 {
			t.Errorf("%v min atoms", n)
		}
	}
}

// TestBuildSizes: builders round to realizable counts near the request.
func TestBuildSizes(t *testing.T) {
	for _, n := range workload.All() {
		_, st, err := workload.Build(n, workload.Options{Atoms: 4000, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", n, err)
		}
		if st.N < 3200 || st.N > 5500 {
			t.Errorf("%v: %d atoms for a 4000 request", n, st.N)
		}
	}
}

// TestBuildDeterministic: same options, same system.
func TestBuildDeterministic(t *testing.T) {
	for _, n := range workload.All() {
		_, a, _ := workload.Build(n, workload.Options{Atoms: 1200, Seed: 5})
		_, b, _ := workload.Build(n, workload.Options{Atoms: 1200, Seed: 5})
		if a.N != b.N {
			t.Fatalf("%v: %d vs %d atoms", n, a.N, b.N)
		}
		for i := 0; i < a.N; i++ {
			if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
				t.Fatalf("%v: atom %d differs between identical builds", n, i)
			}
		}
	}
}

// TestInitialTemperatures: velocity initialization hits each benchmark's
// target temperature.
func TestInitialTemperatures(t *testing.T) {
	cases := []struct {
		name workload.Name
		want float64
	}{
		{workload.LJ, 1.44},
		{workload.Chain, 1.0},
		{workload.EAM, 1600},
		{workload.Rhodo, 300},
	}
	for _, tc := range cases {
		cfg, st := workload.MustBuild(tc.name, workload.Options{Atoms: 3000, Seed: 8})
		ke := compute.KineticEnergy(st, cfg.Mass, cfg.Units)
		T := compute.Temperature(ke, st.N, cfg.Units)
		if math.Abs(T-tc.want) > 0.01*tc.want {
			t.Errorf("%v: initial T %v want %v", tc.name, T, tc.want)
		}
	}
}

// TestRhodoNeutral: the charged system must have zero net charge (PPPM
// assumes neutrality).
func TestRhodoNeutral(t *testing.T) {
	_, st := workload.MustBuild(workload.Rhodo, workload.Options{Atoms: 900, Seed: 2})
	var q float64
	for i := 0; i < st.N; i++ {
		q += st.Charge[i]
	}
	if math.Abs(q) > 1e-9 {
		t.Errorf("net charge %v", q)
	}
	if st.N%3 != 0 {
		t.Errorf("rhodo atom count %d not whole molecules", st.N)
	}
}

// TestUnitsPerWorkload: unit styles follow the bench inputs.
func TestUnitsPerWorkload(t *testing.T) {
	styles := map[workload.Name]units.Style{
		workload.Rhodo: units.Real,
		workload.LJ:    units.LJ,
		workload.Chain: units.LJ,
		workload.EAM:   units.Metal,
		workload.Chute: units.LJ,
	}
	for n, style := range styles {
		cfg, _ := workload.MustBuild(n, workload.Options{Atoms: 500, Seed: 1})
		if cfg.Units.Style != style {
			t.Errorf("%v units %v want %v", n, cfg.Units.Style, style)
		}
	}
}

// TestUnknownWorkload errors cleanly.
func TestUnknownWorkload(t *testing.T) {
	if _, _, err := workload.Build("nope", workload.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestFreshStylesPerBuild: two builds must not share mutable style state
// (domain decomposition depends on this).
func TestFreshStylesPerBuild(t *testing.T) {
	cfgA, _, _ := workload.Build(workload.Chute, workload.Options{Atoms: 600, Seed: 3})
	cfgB, _, _ := workload.Build(workload.Chute, workload.Options{Atoms: 600, Seed: 3})
	if cfgA.Pair == cfgB.Pair {
		t.Error("pair style shared between builds")
	}
	if len(cfgA.Fixes) == 0 || &cfgA.Fixes[0] == &cfgB.Fixes[0] {
		t.Error("fixes shared between builds")
	}
	rA, _, _ := workload.Build(workload.Rhodo, workload.Options{Atoms: 300, Seed: 3})
	rB, _, _ := workload.Build(workload.Rhodo, workload.Options{Atoms: 300, Seed: 3})
	if rA.Kspace == rB.Kspace {
		t.Error("kspace solver shared between builds")
	}
}

// TestChuteNonPeriodicZ and wall protection: no grain below the floor
// after dynamics.
func TestChuteFloor(t *testing.T) {
	cfg, st := workload.MustBuild(workload.Chute, workload.Options{Atoms: 800, Seed: 4})
	if cfg.Box.Periodic[2] {
		t.Fatal("chute box periodic in z")
	}
	s := core.New(cfg, st)
	s.Run(1500)
	for i := 0; i < st.N; i++ {
		if st.Pos[i].Z < -0.6 {
			t.Fatalf("grain %d fell through the floor: z=%v", i, st.Pos[i].Z)
		}
	}
}
