#!/bin/sh
# Serve-layer smoke: boot mdserve on an ephemeral port, drive one small
# LJ job through the HTTP API to completion, scrape /metrics, then
# SIGTERM-drain with a second job running and assert a clean exit (code
# 0) with an intact journal. Run from the repository root (make
# serve-smoke does).
set -eu

DIR=$(mktemp -d /tmp/gomd-serve-smoke.XXXXXX)
PID=""
cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "serve-smoke: $*" >&2
	exit 1
}

go build -o "$DIR/mdserve" ./cmd/mdserve

"$DIR/mdserve" -addr 127.0.0.1:0 -addr-file "$DIR/addr" -data "$DIR/data" \
	>"$DIR/serve.log" 2>&1 &
PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$DIR/addr" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { cat "$DIR/serve.log" >&2; fail "daemon never bound"; }
	kill -0 "$PID" 2>/dev/null || { cat "$DIR/serve.log" >&2; fail "daemon died on startup"; }
	sleep 0.1
done
ADDR=$(cat "$DIR/addr")

# Submit a small checkpointed LJ job and poll it to completion.
BODY='{"tenant":"ci","workload":"lj","atoms":500,"steps":40,"ranks":2,"thermo_every":10,"checkpoint_every":20}'
RESP=$(curl -sS -X POST -d "$BODY" "http://$ADDR/api/v1/jobs")
ID=$(printf '%s' "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit returned no job id: $RESP"

i=0
while :; do
	STATE=$(curl -sS "http://$ADDR/api/v1/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
	case "$STATE" in
	done) break ;;
	failed | cancelled) fail "job $ID ended $STATE" ;;
	esac
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "job $ID stuck in state '$STATE'"
	sleep 0.2
done

curl -sS "http://$ADDR/api/v1/jobs/$ID/result" | grep -q '"steps": *40' ||
	fail "result for $ID missing steps=40"

# The admission/scheduler counters must be on the exposition surface.
curl -sS "http://$ADDR/metrics" | grep -q '^gomd_serve_submitted' ||
	fail "/metrics missing gomd_serve_submitted"

# Drain drill: park a long checkpointed job, SIGTERM, expect exit 0 and
# a journal left behind for the next daemon generation.
BODY='{"tenant":"ci","workload":"lj","atoms":500,"steps":100000,"ranks":2,"thermo_every":10,"checkpoint_every":20}'
curl -sS -X POST -d "$BODY" "http://$ADDR/api/v1/jobs" >/dev/null

kill -TERM "$PID"
CODE=0
wait "$PID" || CODE=$?
PID=""
[ "$CODE" -eq 0 ] || { cat "$DIR/serve.log" >&2; fail "drain exited $CODE, want 0"; }
[ -s "$DIR/data/serve.journal" ] || fail "journal missing after drain"
grep -q '"state":"running"' "$DIR/data/serve.journal" ||
	fail "drained journal has no parked running job"

echo "serve-smoke: ok"
